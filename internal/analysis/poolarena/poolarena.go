// Package poolarena enforces the scratch-arena ownership discipline that
// backs the runtime's zero-allocation guarantee. An object taken from a
// sync.Pool (directly via Get, or through a same-package helper whose doc
// comment carries the //trlint:arena-acquire directive) must be handed
// back on every return path — either a Put on the same pool before the
// return, a deferred Put, a call to a same-package release helper
// annotated //trlint:arena-release (error-path teardown in one place
// instead of an inline triplet at every return), or an explicit
// ownership transfer by returning the object from a function that is
// itself an annotated acquirer.
// Dropping the object on an error path is sometimes the right call (a
// poisoned arena must not be repaired); those sites carry a
// //trlint:checked justification. Pooled objects must never leak into a
// goroutine launched by the holder: the pool may recycle the object the
// moment the function returns.
//
// The activation free list inside a scratch (s.get/s.put) is out of this
// analyzer's reach by design: its buffers travel between exec steps with
// an ownership protocol that is inter-procedural (inputs are released by
// the callee, outputs by the caller), which a per-function pairing check
// cannot express. DESIGN.md §8 records that boundary.
package poolarena

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the poolarena pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolarena",
	Doc:  "pair every sync.Pool Get / arena acquisition with a Put on all return paths; forbid escapes via goroutines",
	Run:  run,
}

// AcquireDirective marks a helper function whose calls hand ownership of
// a pooled object to the caller.
const AcquireDirective = "//trlint:arena-acquire"

// ReleaseDirective marks a helper function that takes ownership of the
// pooled object passed to it and returns it to the pool (after whatever
// repair the error path needs). A call to an annotated releaser counts
// as a Put for the pairing check, so error-path teardown can live in one
// helper instead of an inline triplet copy-pasted at every return.
const ReleaseDirective = "//trlint:arena-release"

func run(pass *analysis.Pass) error {
	acquirers := annotatedFuncs(pass, AcquireDirective)
	releasers := annotatedFuncs(pass, ReleaseDirective)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, acquirers, releasers)
		}
	}
	return nil
}

// annotatedFuncs collects the *types.Func objects of this package's
// functions whose doc comment carries the given directive.
func annotatedFuncs(pass *analysis.Pass, directive string) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), directive) {
					if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// acquisition is one pooled-object takeout inside a function.
type acquisition struct {
	pos  token.Pos
	obj  types.Object // variable holding the pooled object (nil if unassigned)
	expr string       // printable source of the acquiring call, for messages
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, acquirers, releasers map[types.Object]bool) {
	checkBody(pass, fd.Name.Name, fd.Body, acquirers[pass.TypesInfo.Defs[fd.Name]], acquirers, releasers)
}

// checkBody analyzes one function scope. Nested function literals are
// separate scopes: their statements must not count as the enclosing
// function's releases or returns, so they are pruned here and recursed
// into afterwards.
func checkBody(pass *analysis.Pass, name string, body *ast.BlockStmt, selfAcquirer bool, acquirers, releasers map[types.Object]bool) {
	var acqs []acquisition
	var puts []struct {
		pos      token.Pos
		deferred bool
		args     map[types.Object]bool
	}
	var rets []*ast.ReturnStmt
	var lits []*ast.FuncLit

	// First pass: collect acquisitions (with the variable they land in),
	// Put calls, and return statements. Function literals are pruned and
	// queued for their own scope check.
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, v)
			return false
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				call := acquiringCall(pass, rhs, acquirers)
				if call == nil {
					continue
				}
				var obj types.Object
				// With a single multi-value RHS the positions still line
				// up one-to-one for the single-value calls we track.
				if i < len(v.Lhs) {
					if id, ok := v.Lhs[i].(*ast.Ident); ok {
						obj = pass.TypesInfo.Defs[id]
						if obj == nil {
							obj = pass.TypesInfo.Uses[id]
						}
					}
				}
				acqs = append(acqs, acquisition{pos: call.Pos(), obj: obj, expr: exprString(call.Fun)})
			}
		case *ast.DeferStmt:
			if p := releaseCall(pass, v.Call, releasers); p != nil {
				puts = append(puts, struct {
					pos      token.Pos
					deferred bool
					args     map[types.Object]bool
				}{v.Pos(), true, p})
			}
			return false // a deferred non-releasing call is not a release
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if p := releaseCall(pass, call, releasers); p != nil {
					puts = append(puts, struct {
						pos      token.Pos
						deferred bool
						args     map[types.Object]bool
					}{call.Pos(), false, p})
				}
			}
		case *ast.ReturnStmt:
			rets = append(rets, v)
		}
		return true
	})

	for _, lit := range lits {
		checkBody(pass, name+" func literal", lit.Body, false, acquirers, releasers)
	}
	if len(acqs) == 0 {
		return
	}

	// Goroutine captures: the pool may recycle the object once this
	// function returns, so a goroutine holding it is a use-after-put bug.
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, a := range acqs {
			if a.obj == nil {
				continue
			}
			if pos, used := usesObject(pass, lit.Body, a.obj); used {
				pass.Reportc("goroutine-capture", pos, "pooled object %s (from %s) captured by goroutine; the pool may recycle it after %s returns",
					a.obj.Name(), a.expr, name)
			}
		}
		return true
	})

	for _, a := range acqs {
		deferredPut := false
		for _, p := range puts {
			if p.deferred && (a.obj == nil || p.args[a.obj]) {
				deferredPut = true
			}
		}
		if deferredPut {
			continue
		}
		if len(rets) == 0 {
			if len(puts) == 0 {
				pass.Reportc("missing-put", a.pos, "%s acquires a pooled object but %s never calls Put",
					a.expr, name)
			}
			continue
		}
		for _, ret := range rets {
			if ret.Pos() < a.pos {
				continue
			}
			if returnsObject(pass, ret, a.obj) {
				if !selfAcquirer {
					pass.Reportc("escaping-return", ret.Pos(), "pooled object from %s escapes via return; only //trlint:arena-acquire helpers may transfer ownership",
						a.expr)
				}
				continue
			}
			released := false
			for _, p := range puts {
				if !p.deferred && p.pos > a.pos && p.pos < ret.Pos() &&
					(a.obj == nil || p.args[a.obj]) {
					released = true
					break
				}
			}
			if !released {
				pass.Reportc("dropped-put", ret.Pos(), "return path drops pooled object from %s without Put (acquired at line %d)",
					a.expr, pass.Fset.Position(a.pos).Line)
			}
		}
	}
}

// acquiringCall unwraps rhs and returns the call expression if it is a
// pooled-object acquisition: x.Get() on a sync.Pool (possibly through a
// type assertion) or a call to an annotated acquirer.
func acquiringCall(pass *analysis.Pass, rhs ast.Expr, acquirers map[types.Object]bool) *ast.CallExpr {
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ta.X
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Get" && isSyncPool(pass.TypesInfo.Types[sel.X].Type) {
			return call
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && acquirers[obj] {
			return call
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil && acquirers[obj] {
			return call
		}
	}
	return nil
}

// releaseCall reports whether call releases a pooled object — a Put on
// a sync.Pool, or a call to a //trlint:arena-release helper — and if so
// returns the set of variable objects passed as arguments.
func releaseCall(pass *analysis.Pass, call *ast.CallExpr, releasers map[types.Object]bool) map[types.Object]bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Put" && isSyncPool(pass.TypesInfo.Types[fun.X].Type) {
			return callArgs(pass, call)
		}
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil && releasers[obj] {
			return callArgs(pass, call)
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil && releasers[obj] {
			return callArgs(pass, call)
		}
	}
	return nil
}

// callArgs returns the set of variable objects referenced by the call's
// arguments.
func callArgs(pass *analysis.Pass, call *ast.CallExpr) map[types.Object]bool {
	args := make(map[types.Object]bool)
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					args[obj] = true
				}
			}
			return true
		})
	}
	return args
}

func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// usesObject reports whether the subtree references obj, returning the
// first use position.
func usesObject(pass *analysis.Pass, node ast.Node, obj types.Object) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			pos, found = id.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}

// returnsObject reports whether the return statement's results reference
// the pooled variable (ownership transfer to the caller).
func returnsObject(pass *analysis.Pass, ret *ast.ReturnStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, r := range ret.Results {
		if _, used := usesObject(pass, r, obj); used {
			return true
		}
	}
	return false
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun)
	case *ast.IndexExpr:
		return exprString(v.X)
	}
	return "?"
}
