// Package ctxguard enforces the runtime's cancellation contract: a
// function that is handed a cancellation carrier — a context.Context or
// a *sync/atomic.Bool stop flag — must observe it on every iteration of
// every loop it runs. The serving path (internal/serve) promises
// bounded drain times and the batch engine (internal/intinfer) promises
// prompt abort; both promises die silently in a loop that spins without
// looking at its carrier.
//
// The check is CFG-based, not syntactic: a loop passes if every cycle
// through its natural loop crosses an observation — a header condition
// like stop.Load(), an if ctx.Err() != nil branch (conditions live on
// CFG edges), a select on ctx.Done(), a call that forwards the carrier,
// or a call to a same-package function that itself observes (computed
// as a fixpoint). Loops containing no calls at all are exempt: pure
// compute between observations is the normal shape of a kernel inner
// loop, and the carrier is checked by whoever drives it.
package ctxguard

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the ctxguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxguard",
	Doc:  "every loop in a function taking a context.Context or *atomic.Bool stop flag must observe cancellation each iteration",
	Run:  run,
}

// scope is where the cancellation contract is load-bearing: the serving
// path and the batch inference engine, plus this analyzer's fixtures.
var scope = regexp.MustCompile(`internal/(intinfer|serve)$|testdata/src/ctxguard/`)

func run(pass *analysis.Pass) error {
	if !scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	if pass.Flow == nil {
		return nil
	}
	o := newObserver(pass.TypesInfo, pass.Files)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, o, fd, fd.Type)
			// Function literals with their own carrier params are
			// contracts too (worker bodies handed a ctx directly).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, o, lit, lit.Type)
				}
				return true
			})
		}
	}
	return nil
}

// checkFunc verifies every loop of one function against the carriers
// named in its own parameter list.
func checkFunc(pass *analysis.Pass, o *observer, fn ast.Node, ft *ast.FuncType) {
	carriers := carrierParams(pass.TypesInfo, ft)
	if len(carriers) == 0 {
		return
	}
	g := pass.Flow.CFG(fn)
	if g == nil {
		return
	}
	for _, l := range g.Loops {
		nat := g.NaturalLoop(l)
		if o.pureCompute(nat) {
			continue
		}
		if o.blockObserves(l.Header) {
			continue
		}
		if o.blindCycle(l, nat) {
			pass.Report(analysis.Diagnostic{
				Pos:      l.Stmt.Pos(),
				Category: "unobserved-cancel",
				Message: "loop never observes cancellation of " + strings.Join(carriers, ", ") +
					": check ctx.Err()/ctx.Done() or the stop flag's Load() each iteration, or forward the carrier into the calls",
			})
		}
	}
}

// carrierParams returns the names of ft's parameters whose type is a
// cancellation carrier.
func carrierParams(info *types.Info, ft *ast.FuncType) []string {
	var names []string
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if isCarrier(obj.Type()) {
				names = append(names, name.Name)
			}
		}
	}
	return names
}

func isCarrier(t types.Type) bool {
	return isContext(t) || isAtomicBool(t)
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isAtomicBool matches sync/atomic.Bool and *sync/atomic.Bool — the
// stop-flag idiom the kernels and server use for cooperative abort.
func isAtomicBool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Bool"
}

// observer decides whether a syntax subtree observes cancellation. The
// observing set of same-package functions is computed once per package
// as a fixpoint: f observes if its body contains a primitive
// observation or a call to an already-observing function.
type observer struct {
	info      *types.Info
	observing map[types.Object]bool
}

func newObserver(info *types.Info, files []*ast.File) *observer {
	o := &observer{info: info, observing: make(map[types.Object]bool)}
	var decls []*ast.FuncDecl
	for _, file := range files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			obj := info.Defs[fd.Name]
			if obj == nil || o.observing[obj] {
				continue
			}
			if o.observes(fd.Body) {
				o.observing[obj] = true
				changed = true
			}
		}
	}
	return o
}

// observes reports whether any call inside n is an observation. The
// scan deliberately descends into function literals: a loop that spawns
// workers which each watch ctx.Done() has made the handoff, and the
// forwarding call itself is the per-iteration observation.
func (o *observer) observes(n ast.Node) bool {
	if rh, ok := n.(dataflow.RangeHeader); ok {
		// Only the range operand executes in the header block; the body
		// has its own blocks and must not be attributed here.
		if rh.X == nil {
			return false
		}
		n = rh.X
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && o.callObserves(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// callObserves reports whether one call is an observation: a primitive
// (Load on an atomic.Bool, Err/Done on a context), a call forwarding a
// carrier argument, or a call to an observing same-package function.
func (o *observer) callObserves(call *ast.CallExpr) bool {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv := o.info.Types[sel.X]; recv.Type != nil {
			switch sel.Sel.Name {
			case "Load":
				if isAtomicBool(recv.Type) {
					return true
				}
			case "Err", "Done":
				if isContext(recv.Type) {
					return true
				}
			}
		}
	}
	for _, arg := range call.Args {
		if tv := o.info.Types[arg]; tv.Type != nil && isCarrier(tv.Type) {
			return true
		}
	}
	if obj := o.callee(call); obj != nil && o.observing[obj] {
		return true
	}
	return false
}

// callee resolves the called object, if it is statically known.
func (o *observer) callee(call *ast.CallExpr) types.Object {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return o.info.Uses[f]
	case *ast.SelectorExpr:
		return o.info.Uses[f.Sel]
	}
	return nil
}

// blockObserves reports whether the block's own statements or the
// branch conditions it evaluates (conditions live on outgoing edges)
// observe cancellation.
func (o *observer) blockObserves(b *dataflow.Block) bool {
	for _, n := range b.Nodes {
		if o.observes(n) {
			return true
		}
	}
	for _, e := range b.Succs {
		if e.Cond != nil && o.observes(e.Cond) {
			return true
		}
	}
	return false
}

// blindCycle reports whether some path from the loop header returns to
// it without crossing an observation: a full iteration the carrier
// never interrupts. Edges whose condition observes are closed (the
// condition is evaluated whichever way the branch goes), and observing
// blocks are not traversed through.
func (o *observer) blindCycle(l dataflow.Loop, nat map[*dataflow.Block]bool) bool {
	seen := make(map[*dataflow.Block]bool)
	var dfs func(b *dataflow.Block) bool
	dfs = func(b *dataflow.Block) bool {
		for _, e := range b.Succs {
			if !nat[e.To] {
				continue
			}
			if e.Cond != nil && o.observes(e.Cond) {
				continue
			}
			if e.To == l.Header {
				return true
			}
			if seen[e.To] {
				continue
			}
			seen[e.To] = true
			if o.nodesObserve(e.To) {
				continue
			}
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	return dfs(l.Header)
}

// nodesObserve is blockObserves restricted to the block's statements;
// outgoing conditions are judged edge-by-edge during the cycle search.
func (o *observer) nodesObserve(b *dataflow.Block) bool {
	for _, n := range b.Nodes {
		if o.observes(n) {
			return true
		}
	}
	return false
}

// pureCompute reports whether the natural loop contains no calls beyond
// builtins and conversions — a raw arithmetic loop with nothing to
// forward a carrier into. Such loops are the driven, not the drivers.
func (o *observer) pureCompute(nat map[*dataflow.Block]bool) bool {
	for b := range nat {
		for _, n := range b.Nodes {
			if o.hasRealCall(n) {
				return false
			}
		}
		for _, e := range b.Succs {
			if e.Cond != nil && o.hasRealCall(e.Cond) {
				return false
			}
		}
	}
	return true
}

func (o *observer) hasRealCall(n ast.Node) bool {
	if rh, ok := n.(dataflow.RangeHeader); ok {
		if rh.X == nil {
			return false
		}
		n = rh.X
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv := o.info.Types[call.Fun]
		if tv.IsType() || tv.IsBuiltin() {
			return true
		}
		found = true
		return false
	})
	return found
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
