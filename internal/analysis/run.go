package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"

	"repro/internal/analysis/dataflow"
)

// CheckedDirective is the audited escape hatch: a diagnostic whose source
// line, or the line immediately above it, carries a comment containing
// this directive is suppressed. The directive should always be followed
// by a short justification, e.g.
//
//	return int32(v) //trlint:checked clamped to [lo, hi] above
const CheckedDirective = "//trlint:checked"

// Run applies every analyzer to every package and returns the surviving
// findings, sorted by position. Suppressed findings (CheckedDirective)
// are dropped centrally so analyzers stay oblivious to the convention. A
// non-nil error reports an analyzer crash, not a finding.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		checked := checkedLines(pkg)
		// One dataflow cache per package: every analyzer over this
		// package shares CFGs and interval solutions.
		var flow *dataflow.Cache
		if pkg.TypesInfo != nil {
			flow = dataflow.NewCache(pkg.TypesInfo)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Files,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.TypesInfo,
				GoFiles:      pkg.GoFiles,
				IgnoredFiles: pkg.IgnoredFiles,
				OtherFiles:   pkg.OtherFiles,
				Flow:         flow,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if !d.Unsuppressable && checked[lineKey{pos.Filename, pos.Line}] {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name, Category: d.Category, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return findings, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

type lineKey struct {
	file string
	line int
}

// checkedLines collects every line a CheckedDirective comment blesses:
// the comment's own line and the line below it (so the directive can sit
// on its own line above a long statement).
func checkedLines(pkg *Package) map[lineKey]bool {
	lines := make(map[lineKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, strings.TrimPrefix(CheckedDirective, "//")) {
					continue
				}
				if !strings.HasPrefix(strings.TrimSpace(c.Text), CheckedDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines[lineKey{pos.Filename, pos.Line}] = true
				lines[lineKey{pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return lines
}

// Inspect walks every file in the pass in depth-first order, calling fn
// for each node; fn returning false prunes the subtree. It is the
// minimal stand-in for x/tools' inspect pass.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
