// Fixture: conversions quantnarrow must accept — bounded by a clamp
// call, a mask, a representable constant, a widening, or an explicit
// //trlint:checked justification.
package b

func sink(vs ...interface{}) {}

func clamp8(v int32) int32 {
	if v > 127 {
		return 127
	}
	if v < -127 {
		return -127
	}
	return v
}

func bounded(acc int32, bits uint32) {
	sink(int8(clamp8(acc)))  // clamp-named callee bounds its result
	sink(uint8(bits & 0xff)) // mask provably fits the destination
	sink(int8(127))          // representable constant
	sink(int64(acc))         // widening is value-preserving
	x := int8(acc)           //trlint:checked fixture: the suppression directive is honoured
	sink(x)
}
