// Fixture: conversions quantnarrow must flag.
package a

func sink(vs ...interface{}) {}

func hazards(acc int32, f float64, u uint16, wide int64) {
	sink(int8(acc))   // want "implicit narrowing conversion int32 -> int8 may truncate"
	sink(int32(f))    // want "implicit float-to-integer conversion float -> int32 may truncate"
	sink(uint8(u))    // want "implicit narrowing conversion uint16 -> uint8 may truncate"
	sink(int16(wide)) // want "implicit narrowing conversion int64 -> int16 may truncate"
}
