// Fixture: float comparisons floatcmp must accept — the exact-zero
// guard, the NaN probe, bit-pattern equality through math.Float64bits,
// an explicit epsilon, and the //trlint:checked escape hatch.
package b

import "math"

const eps = 1e-9

func good(x, y float64) bool {
	if x == 0 { // exact integral zero: a division guard, exempt by design
		return false
	}
	if x != x { // NaN probe, exempt by design
		return false
	}
	if math.Float64bits(x) == math.Float64bits(y) { // uint64 compare
		return true
	}
	if d := x - y; d < eps && d > -eps { // explicit tolerance
		return true
	}
	legacy := x == y //trlint:checked fixture: the suppression directive is honoured
	return legacy
}
