// Fixture: float comparisons floatcmp must flag.
package a

func bad(x, y float64, s []float32) bool {
	if x == y { // want "== on floating-point operands is bit-inexact"
		return true
	}
	return s[0] != float32(y) // want "!= on floating-point operands is bit-inexact"
}
