// Fixture: error flows errpropagate must accept — propagation, the
// conventionally-ignored print and in-memory-writer families, and the
// //trlint:checked escape hatch.
package b

import (
	"fmt"
	"strings"
)

func work() error { return nil }

func good() error {
	if err := work(); err != nil {
		return err
	}
	fmt.Println("print-family errors are conventionally ignored")
	var sb strings.Builder
	sb.WriteString("in-memory writers never fail")
	//trlint:checked fixture: the suppression directive is honoured
	work()
	return nil
}
