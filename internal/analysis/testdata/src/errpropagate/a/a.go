// Fixture: discarded errors errpropagate must flag.
package a

import "errors"

func work() error { return errors.New("boom") }

func multi() (int, error) { return 0, errors.New("boom") }

func bad() {
	work()          // want "call drops its error result"
	_ = work()      // want "error result discarded via _"
	defer work()    // want "defer call drops its error result"
	go work()       // want "go call drops its error result"
	n, _ := multi() // want "error result discarded via _"
	_ = n
}
