// Fixture: accesses lockguard must flag — guarded state touched
// without the declared lock, with only the read side, or after the
// lock was released.
package a

import "sync"

type S struct {
	mu sync.RWMutex
	//trlint:guarded-by(mu)
	count int
	//trlint:guarded-by(mu)
	q chan int
}

func (s *S) badWrite() {
	s.count++ // want "write to s.count requires s.mu held exclusively"
}

func (s *S) badRead() int {
	return s.count // want "read of s.count requires s.mu held"
}

func (s *S) readLockWrite() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.count = 1 // want "write to s.count requires s.mu held exclusively"
}

func (s *S) unlockThenTouch() {
	s.mu.Lock()
	s.count = 1
	s.mu.Unlock()
	s.count = 2 // want "write to s.count requires s.mu held exclusively"
}

// Held on only one path into the merge: not held at the join.
func (s *S) branchyLock(b bool) {
	if b {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.count++ // want "write to s.count requires s.mu held exclusively"
}

func (s *S) closeUnlocked() {
	close(s.q) // want "write to s.q requires s.mu held exclusively"
}

var (
	gmu sync.Mutex
	//trlint:guarded-by(gmu)
	g int
)

func bumpG() {
	g++ // want "write to g requires gmu held exclusively"
}
