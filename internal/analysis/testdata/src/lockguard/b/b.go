// Fixture: access patterns lockguard must accept — proper lock pairing,
// read locks for reads, deferred unlocks (held-to-exit), and
// //trlint:holds on helpers called under the lock.
package b

import "sync"

type S struct {
	mu sync.RWMutex
	//trlint:guarded-by(mu)
	count int
	//trlint:guarded-by(mu)
	q chan int
}

func (s *S) Inc() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
}

func (s *S) Get() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// A channel send is a read of the field (the channel mutates, the
// field does not), so the read lock suffices.
func (s *S) Push(v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.q <- v
}

func (s *S) Drain() {
	s.mu.Lock()
	s.count = 0
	close(s.q)
	s.mu.Unlock()
}

// incLocked runs only under s.mu; the annotation seeds the lock set.
//
//trlint:holds(mu)
func (s *S) incLocked() {
	s.count++
}

var (
	gmu sync.Mutex
	//trlint:guarded-by(gmu)
	g int
)

func BumpG() {
	gmu.Lock()
	g++
	gmu.Unlock()
}

//trlint:holds(gmu)
func bumpGLocked() {
	g++
}
