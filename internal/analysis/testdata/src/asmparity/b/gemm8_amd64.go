// Fixture: the gemm8 microkernel triple. The stub carries the real
// kernel's shape — slice operands, a fused requant multiplier and clamp
// bounds — so the analyzer is exercised on a multi-parameter signature,
// not just the minimal pointer+len one in asm_amd64.go.
package b

//go:noescape
func gemm8tile(dst []int32, dstStride int, a []int16, b []uint8, kq int, bias []int32, mult, lo, hi float64)
