package b

import "testing"

// TestGemm8Differential is the differential-test reference asmparity
// looks for: it mentions gemm8tile from a *_test.go file in the package.
func TestGemm8Differential(t *testing.T) {
	t.Skip("fixture: the real suite compares gemm8tile against its portable sibling")
}
