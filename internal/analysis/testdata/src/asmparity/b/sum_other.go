//go:build !amd64

package b

func sumAsm(p *float64, n int) float64 { return 0 }
