package b

import "testing"

// TestSumDifferential is the differential test asmparity looks for: it
// references sumAsm by name from a *_test.go file in the package.
func TestSumDifferential(t *testing.T) {
	t.Skip("fixture: a real suite would compare sumAsm against the portable sibling")
}
