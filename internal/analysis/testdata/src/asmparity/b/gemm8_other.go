//go:build !amd64 || noasm

// Fixture: the portable sibling, selected when the assembly is compiled
// out — on non-amd64 hosts or under -tags noasm, mirroring the real
// kernels package.
package b

func gemm8tile(dst []int32, dstStride int, a []int16, b []uint8, kq int, bias []int32, mult, lo, hi float64) {
	_ = dst
}
