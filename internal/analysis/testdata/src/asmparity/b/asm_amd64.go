// Fixture: the complete asm-parity triple asmparity must accept — a
// stub, a signature-identical portable sibling, and a differential test
// referencing the symbol.
package b

//go:noescape
func sumAsm(p *float64, n int) float64
