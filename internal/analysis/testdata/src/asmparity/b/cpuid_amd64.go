// Fixture: feature-detection probes (CPUID/XGETBV declarations like
// cpuHasAVX512VNNI in the kernels package) carry no //go:noescape
// directive and are exempt from the parity invariant — they have no
// portable twin to compare against; the build-tag seam supplies a
// constant on other platforms instead.
package b

func cpuHasVNNI() bool
