// Fixture: the untested-kernel case — a VNNI-generation stub with a
// signature-identical portable sibling but no *_test.go reference.
// Parity of implementations alone is not enough; the differential test
// is what exercises the asm path against the sibling in CI.
package a

//go:noescape
func vnniTile(dst []int32, a []uint8, b []int8, kq int) // want "no differential test"
