//go:build !amd64

package a

func vnniTile(dst []int32, a []uint8, b []int8, kq int) {
	_ = dst
}
