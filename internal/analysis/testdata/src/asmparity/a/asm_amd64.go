// Fixture: asm stubs asmparity must flag. The package deliberately has
// no .s backing — the loader type-checks fixtures from source, so the
// missing bodies never reach a linker.
package a

// dotAsm has no portable sibling anywhere in the package.
//
//go:noescape
func dotAsm(a, b *float64, n int) float64 // want "no portable sibling" "no differential test"

// scaleAsm has a sibling whose signature drifted (int vs int64).
//
//go:noescape
func scaleAsm(dst *float64, n int) // want "differs from portable sibling" "no differential test"
