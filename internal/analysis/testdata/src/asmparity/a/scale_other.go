//go:build !amd64

package a

func scaleAsm(dst *float64, n int64) {}
