// Fixture: arena usage poolarena must accept — paired Put on every
// path, a deferred Put, ownership transfer through an annotated
// acquirer, and a justified drop on a poisoned-arena error path.
package b

import (
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() interface{} { return new([]byte) }}

func use(b *[]byte) error { return nil }

// acquire hands the pooled object to its caller by contract.
//
//trlint:arena-acquire
func acquire() *[]byte {
	b := pool.Get().(*[]byte)
	return b // ownership transfer: legal from an annotated acquirer
}

func pairedOnAllPaths(fail bool) error {
	b := acquire()
	if fail {
		//trlint:checked fixture: deliberate drop, a poisoned arena is not repaired
		return errors.New("boom")
	}
	pool.Put(b)
	return nil
}

func releasedByDefer() error {
	b := pool.Get().(*[]byte)
	defer pool.Put(b)
	return use(b)
}

// release hands the pooled object back to the pool by contract; callers
// may treat a call to it as the Put on an error path.
//
//trlint:arena-release
func release(b *[]byte) {
	pool.Put(b)
}

func releasedThroughHelper(fail bool) error {
	b := pool.Get().(*[]byte)
	if fail {
		release(b)
		return errors.New("boom")
	}
	pool.Put(b)
	return nil
}

func releasedByDeferredHelper() error {
	b := pool.Get().(*[]byte)
	defer release(b)
	return use(b)
}
