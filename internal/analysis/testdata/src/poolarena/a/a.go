// Fixture: arena-lifetime violations poolarena must flag.
package a

import (
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() interface{} { return new([]byte) }}

func use(b *[]byte) {}

func leakOnErrorPath(fail bool) error {
	b := pool.Get().(*[]byte)
	if fail {
		return errors.New("boom") // want "return path drops pooled object"
	}
	pool.Put(b)
	return nil
}

func escapes() *[]byte {
	b := pool.Get().(*[]byte)
	return b // want "escapes via return"
}

func capturedByGoroutine() {
	b := pool.Get().(*[]byte)
	go func() {
		use(b) // want "captured by goroutine"
	}()
	pool.Put(b)
}

func neverReleases() {
	b := pool.Get().(*[]byte) // want "never calls Put"
	use(b)
}

// unannotatedRelease does hand the object back, but carries no
// //trlint:arena-release directive, so callers get no pairing credit.
func unannotatedRelease(b *[]byte) {
	pool.Put(b)
}

func helperWithoutDirective(fail bool) error {
	b := pool.Get().(*[]byte)
	if fail {
		unannotatedRelease(b)
		return errors.New("boom") // want "return path drops pooled object"
	}
	pool.Put(b)
	return nil
}
