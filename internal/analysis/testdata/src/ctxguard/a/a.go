// Fixture: loops ctxguard must flag — functions handed a cancellation
// carrier whose loops run full iterations without ever observing it.
package a

import (
	"context"
	"sync/atomic"
)

func work() {}

func spinCtx(ctx context.Context, n int) {
	for i := 0; i < n; i++ { // want "loop never observes cancellation of ctx"
		work()
	}
}

func spinStop(stop *atomic.Bool, xs []int) {
	for range xs { // want "loop never observes cancellation of stop"
		work()
	}
}

// Checking before the loop is not checking per iteration.
func checkOnce(ctx context.Context, xs []int) {
	if ctx.Err() != nil {
		return
	}
	for range xs { // want "loop never observes cancellation of ctx"
		work()
	}
}

// Observing on one branch only: the other branch still completes blind
// iterations.
func oneBranch(ctx context.Context, xs []int, rare bool) {
	for range xs { // want "loop never observes cancellation of ctx"
		if rare {
			if ctx.Err() != nil {
				return
			}
		}
		work()
	}
}
