// Fixture: loops ctxguard must accept — every iteration crosses an
// observation of the carrier, or the loop is pure compute with nothing
// to forward the carrier into.
package b

import (
	"context"
	"sync/atomic"
)

var globalStop atomic.Bool

func work() {}

func step(ctx context.Context) {}

// stopped observes through a package-level flag; callers inherit the
// observation via the fixpoint.
func stopped() bool { return globalStop.Load() }

// The loop condition observes: conditions live on the header's edges.
func headerFlag(stop *atomic.Bool) {
	for !stop.Load() {
		work()
	}
}

// An early-exit branch observes on every path through the body.
func bodyErrCheck(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		work()
	}
}

// Forwarding the carrier into a call is the per-iteration observation.
func forwards(ctx context.Context, xs []int) {
	for range xs {
		step(ctx)
	}
}

// Calling a same-package helper that observes counts (fixpoint).
func viaHelper(ctx context.Context, xs []int) {
	for range xs {
		if stopped() {
			return
		}
		work()
	}
}

// Select evaluates every clause's channel up front, so a Done case is
// observed whichever clause fires.
func pump(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-ch:
			_ = v
			work()
		}
	}
}

// Pure compute: no calls to forward a carrier into; the driver checks.
func pure(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	if ctx.Err() != nil {
		return 0
	}
	return s
}

// A worker-spawning loop observes by handing the carrier to each worker.
func spawn(ctx context.Context, xs []int, out chan int) {
	for i := range xs {
		i := i
		go func() {
			select {
			case <-ctx.Done():
			case out <- i:
			}
		}()
	}
}
