// Package a is a loader smoke-test fixture.
package a

import "math"

// F exists so the loader test can look it up, and imports a stdlib
// package so export-data importing is exercised.
func F(x float64) float64 { return math.Abs(x) }
