// Fixture: findings intrange must report — conversions the interval
// analysis proves always truncate, suppressions it proves stale, and
// suppressions with no justification.
package a

func sink(vs ...interface{}) {}

func overflows(n int) {
	x := 300
	sink(int8(x)) // want "conversion int64 -> int8 provably overflows"
	y := -5
	sink(uint8(y)) // want "conversion int64 -> uint8 provably overflows"
	big := 70000
	if n > 0 {
		big = 100000
	}
	sink(uint16(big)) // want "conversion int64 -> uint16 provably overflows"
}

func stale(f float64) {
	c := f
	if c > 127 {
		c = 127
	} else if c < -127 {
		c = -127
	}
	sink(int8(c)) //trlint:checked clamped above // want "stale //trlint:checked: interval analysis proves"
}

func staleGuard(e int) uint8 {
	if e < 0 || e > 0xff {
		panic("out of range")
	}
	//trlint:checked bounds guarded above // want "stale //trlint:checked: interval analysis proves"
	return uint8(e)
}

func bare(v int64) {
	sink(int32(v)) //trlint:checked // want "bare //trlint:checked: add a one-line justification"
}
