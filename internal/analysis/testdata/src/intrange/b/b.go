// Fixture: idioms intrange must accept — proven narrowings carrying no
// directive (the machine owns the proof), overlapping-but-unproven
// narrowings (quantnarrow's business, not an intrange overflow), and
// justified suppressions on conversions the interval analysis cannot
// prove.
package b

func sink(vs ...interface{}) {}

// Proven safe by the interval analysis: no directive needed, and
// nothing for intrange to say.
func clamped(f float64) {
	c := f
	if c > 127 {
		c = 127
	} else if c < -127 {
		c = -127
	}
	sink(int8(c))
}

func guarded(e int) uint8 {
	if e < 0 || e > 0xff {
		panic("out of range")
	}
	return uint8(e)
}

func masked(x int) {
	sink(uint8(x & 0x7f))
}

// Overlapping interval: may or may not truncate, so it is not a provable
// overflow (quantnarrow would flag it; intrange stays silent).
func overlap(n int) {
	x := 0
	if n > 0 {
		x = 1000
	}
	sink(int16(x))
}

// Unprovable, justified: the bound comes from a contract the analysis
// cannot see, and the one-line justification keeps the directive legal.
func external(raw int64) {
	sink(int32(raw)) //trlint:checked caller contract: raw is a row index below 2^20
}
