// Package asmparity keeps the assembly microkernels honest. Every
// //go:noescape stub declared in a *_amd64.go file is an AVX2/FMA (or
// similar) symbol whose behaviour the rest of the runtime treats as
// bit-exact with portable Go; the analyzer enforces the three artifacts
// that make that claim checkable:
//
//  1. a portable sibling of the same name and signature in a *_other.go
//     file of the same package (selected under !amd64 build tags), so the
//     package compiles and runs everywhere;
//  2. signature equality between stub and sibling, parameter names aside
//     — a drifted signature means the two builds call different shapes;
//  3. a differential test in the package referencing the stub symbol, so
//     the asm path is exercised against the portable reference in CI.
//
// The analyzer reads the build-excluded sibling files (Pass.IgnoredFiles)
// and the package's *_test.go sources directly from the package
// directory: both are invisible to the type-checked build it runs under,
// which is precisely why the invariant needs a dedicated check.
package asmparity

import (
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the asmparity pass.
var Analyzer = &analysis.Analyzer{
	Name: "asmparity",
	Doc:  "every //go:noescape asm stub in *_amd64.go needs a matching portable sibling in *_other.go and a differential test",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	stubs := collectStubs(pass)
	if len(stubs) == 0 {
		return nil
	}
	siblings, err := collectSiblings(pass)
	if err != nil {
		return err
	}
	for _, stub := range stubs {
		sib, ok := siblings[stub.name]
		if !ok {
			pass.Reportc("missing-sibling", stub.pos, "asm stub %s has no portable sibling in a *_other.go file", stub.name)
		} else if sib.sig != stub.sig {
			pass.Reportc("signature-mismatch", stub.pos, "asm stub %s signature %q differs from portable sibling %q",
				stub.name, stub.sig, sib.sig)
		}
		tested, err := referencedInTests(pass, stub.name)
		if err != nil {
			return err
		}
		if !tested {
			pass.Reportc("missing-test", stub.pos, "asm stub %s has no differential test: no *_test.go in the package references it", stub.name)
		}
	}
	return nil
}

type funcSig struct {
	name string
	sig  string // normalized signature, parameter names stripped
	pos  token.Pos
}

// collectStubs finds //go:noescape body-less declarations in *_amd64.go
// files, whether build-selected (this platform is amd64) or ignored (it
// is not). Ignored files are parsed into the pass FileSet so diagnostics
// carry real positions either way.
func collectStubs(pass *analysis.Pass) []funcSig {
	var stubs []funcSig
	for i, f := range pass.Files {
		if !strings.HasSuffix(pass.GoFiles[i], "_amd64.go") {
			continue
		}
		stubs = append(stubs, stubsInFile(f)...)
	}
	for _, path := range pass.IgnoredFiles {
		if !strings.HasSuffix(path, "_amd64.go") {
			continue
		}
		f, err := parser.ParseFile(pass.Fset, path, nil, parser.ParseComments)
		if err != nil {
			continue // unparseable ignored file: not this analyzer's business
		}
		stubs = append(stubs, stubsInFile(f)...)
	}
	return stubs
}

func stubsInFile(f *ast.File) []funcSig {
	var out []funcSig
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body != nil || fd.Recv != nil {
			continue
		}
		if !hasNoescape(fd) {
			continue
		}
		out = append(out, funcSig{name: fd.Name.Name, sig: sigString(fd), pos: fd.Pos()})
	}
	return out
}

func hasNoescape(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//go:noescape") {
			return true
		}
	}
	return false
}

// collectSiblings gathers function declarations with bodies from every
// *_other.go file of the package, looking in both the selected and the
// build-excluded file lists so the check works on any host platform.
func collectSiblings(pass *analysis.Pass) (map[string]funcSig, error) {
	out := make(map[string]funcSig)
	add := func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			out[fd.Name.Name] = funcSig{name: fd.Name.Name, sig: sigString(fd), pos: fd.Pos()}
		}
	}
	for i, f := range pass.Files {
		if strings.HasSuffix(pass.GoFiles[i], "_other.go") {
			add(f)
		}
	}
	for _, path := range pass.IgnoredFiles {
		if !strings.HasSuffix(path, "_other.go") {
			continue
		}
		f, err := parser.ParseFile(pass.Fset, path, nil, 0)
		if err != nil {
			return nil, err
		}
		add(f)
	}
	return out, nil
}

// sigString renders a function's parameter and result types with names
// stripped, so `dst, a *float64` and `p, q *float64` compare equal.
func sigString(fd *ast.FuncDecl) string {
	var parts []string
	expand := func(fl *ast.FieldList) []string {
		if fl == nil {
			return nil
		}
		var ts []string
		for _, field := range fl.List {
			t := typeString(field.Type)
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				ts = append(ts, t)
			}
		}
		return ts
	}
	parts = append(parts, "("+strings.Join(expand(fd.Type.Params), ", ")+")")
	if rs := expand(fd.Type.Results); len(rs) > 0 {
		parts = append(parts, "("+strings.Join(rs, ", ")+")")
	}
	return "func" + strings.Join(parts, " ")
}

func typeString(e ast.Expr) string {
	var b strings.Builder
	fset := token.NewFileSet()
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// referencedInTests reports whether any *_test.go file in the package
// directory mentions the symbol name.
func referencedInTests(pass *analysis.Pass, name string) (bool, error) {
	if len(pass.GoFiles) == 0 && len(pass.IgnoredFiles) == 0 {
		return false, nil
	}
	dir := ""
	if len(pass.GoFiles) > 0 {
		dir = filepath.Dir(pass.GoFiles[0])
	} else {
		dir = filepath.Dir(pass.IgnoredFiles[0])
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	word := regexp.MustCompile(`\b` + regexp.QuoteMeta(name) + `\b`)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return false, err
		}
		if word.Match(data) {
			return true, nil
		}
	}
	return false, nil
}
