// Package intrange is the interval tier over the quantized data path:
// it runs the abstract-interpretation interval analysis
// (internal/analysis/dataflow) across internal/kernels, internal/term,
// internal/quant and internal/intinfer and reports three things the
// syntactic analyzers cannot see:
//
//   - "overflow": a narrowing conversion whose operand interval lies
//     WHOLLY outside the destination domain — not "may truncate" but
//     "always truncates". (Overlapping-but-unproven narrowings stay
//     quantnarrow's business; intrange only asserts what it can prove.)
//
//   - "stale-suppression": a //trlint:checked directive whose blessed
//     lines contain narrowing conversions that the interval analysis
//     now proves safe — the suppression documents a proof the machine
//     has taken over, so it must be deleted. These findings bypass the
//     suppression mechanism (they sit on the very lines it blesses).
//
//   - "bare-suppression": a //trlint:checked with no justification
//     text. Every surviving suppression must say in one line why a
//     human believes the code is safe; a bare directive is an unaudited
//     escape. Also unsuppressable, for the same reason.
//
// The stale check reuses quantnarrow's own Hazardous/Accepted predicates,
// so "intrange proves it" and "quantnarrow stops flagging it" are the
// same event by construction: deleting a stale suppression can never
// resurface a finding.
package intrange

import (
	"go/ast"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
	"repro/internal/analysis/quantnarrow"
)

// Analyzer is the intrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "intrange",
	Doc:  "prove integer ranges through the quantized kernels: definite overflows, stale and bare //trlint:checked suppressions",
	Run:  run,
}

// scope is where the interval checks (overflow, stale) run: the
// packages carrying the paper's integer-domain invariants, plus this
// analyzer's fixtures.
var scope = regexp.MustCompile(`internal/(kernels|intinfer|term|quant)$|testdata/src/intrange/`)

// fixtureRE recognizes fixture packages of OTHER analyzers, which the
// global bare-suppression audit must leave alone (their b/ suites pin
// the suppression mechanics they test).
var fixtureRE = regexp.MustCompile(`testdata/src/`)

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	inScope := scope.MatchString(path)
	foreignFixture := fixtureRE.MatchString(path) && !strings.Contains(path, "testdata/src/intrange/")
	if !inScope && foreignFixture {
		return nil
	}
	for _, file := range pass.Files {
		var facts *dataflow.IntervalFacts
		if pass.Flow != nil && inScope {
			facts = pass.Flow.FileIntervals(file)
		}
		if inScope {
			checkOverflows(pass, file, facts)
		}
		checkSuppressions(pass, file, facts, inScope)
	}
	return nil
}

// checkOverflows reports conversions whose operand interval cannot
// intersect the destination domain: every execution truncates.
func checkOverflows(pass *analysis.Pass, file *ast.File, facts *dataflow.IntervalFacts) {
	if facts == nil {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		detail, src, dst, hazard := quantnarrow.Hazardous(pass.TypesInfo, call)
		if !hazard {
			return true
		}
		iv, ok := facts.Conv[call]
		if !ok {
			return true
		}
		dom, ok := dataflow.Domain(pass.TypesInfo.Types[call].Type)
		if !ok {
			return true
		}
		// Wholly outside: even one-sided knowledge suffices (an operand
		// proven ≥ 300 can never fit int8, bounded above or not).
		if iv.Lo > dom.Hi || iv.Hi < dom.Lo {
			pass.Reportc("overflow", call.Pos(),
				"%s conversion %s -> %s provably overflows: operand interval [%g, %g] lies outside [%g, %g]",
				detail, src, dst, iv.Lo, iv.Hi, dom.Lo, dom.Hi)
		}
		return true
	})
}

// checkSuppressions audits every //trlint:checked directive in file:
// bare directives (no justification) everywhere, stale directives
// (interval analysis now proves every narrowing conversion on the
// blessed lines) inside the interval scope. Both reports are
// unsuppressable — they live on the very lines the directive blesses.
func checkSuppressions(pass *analysis.Pass, file *ast.File, facts *dataflow.IntervalFacts, inScope bool) {
	// Narrowing conversions by line, for the stale check.
	convs := make(map[int][]*ast.CallExpr)
	if inScope && facts != nil {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, _, _, hazard := quantnarrow.Hazardous(pass.TypesInfo, call); hazard {
				line := pass.Fset.Position(call.Pos()).Line
				convs[line] = append(convs[line], call)
			}
			return true
		})
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, analysis.CheckedDirective) {
				continue
			}
			just := strings.TrimSpace(strings.TrimPrefix(text, analysis.CheckedDirective))
			if i := strings.Index(just, "// want "); i >= 0 {
				// A fixture expectation shares the directive's line comment
				// (a line comment runs to end of line); it is the harness
				// talking, not a justification.
				just = strings.TrimSpace(just[:i])
			}
			if just == "" {
				pass.Report(analysis.Diagnostic{
					Pos:            c.Pos(),
					Category:       "bare-suppression",
					Unsuppressable: true,
					Message:        "bare //trlint:checked: add a one-line justification for why this is safe",
				})
				continue
			}
			if !inScope || facts == nil {
				continue
			}
			line := pass.Fset.Position(c.Pos()).Line
			var blessed []*ast.CallExpr
			blessed = append(blessed, convs[line]...)
			blessed = append(blessed, convs[line+1]...)
			if len(blessed) == 0 {
				continue // suppression for some other analyzer's finding
			}
			allProven := true
			for _, call := range blessed {
				if !quantnarrow.Accepted(pass.TypesInfo, facts, call) {
					allProven = false
					break
				}
			}
			if allProven {
				pass.Report(analysis.Diagnostic{
					Pos:            c.Pos(),
					Category:       "stale-suppression",
					Unsuppressable: true,
					Message: "stale //trlint:checked: interval analysis proves every narrowing conversion " +
						"on the suppressed line; delete the directive",
				})
			}
		}
	}
}
