package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath   string
	Dir          string
	Fset         *token.FileSet
	Files        []*ast.File
	GoFiles      []string // absolute paths, parallel to Files
	IgnoredFiles []string // build-excluded .go files (absolute paths)
	OtherFiles   []string // non-Go files, e.g. *.s (absolute paths)
	Types        *types.Package
	TypesInfo    *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath     string
	Dir            string
	Export         string
	Standard       bool
	DepOnly        bool
	GoFiles        []string
	IgnoredGoFiles []string
	SFiles         []string
	Imports        []string
	ImportMap      map[string]string
	Error          *struct{ Err string }
}

// Load resolves the patterns with the go tool and type-checks every
// matched (non-dependency) package from source. Dependencies — the
// standard library and sibling packages of this module — are consumed as
// compiler export data, which `go list -export` builds offline through
// the ordinary build cache. This is the same division of labour as an
// x/tools driver running in "export data" mode.
func Load(patterns ...string) ([]*Package, error) {
	return LoadWithTags("", patterns...)
}

// LoadWithTags is Load under an explicit build-tag set (the -tags
// argument to the go tool, e.g. "noasm"). The tag set changes which
// files are build-selected — GoFiles vs IgnoredFiles — so analyzers see
// exactly the package the tagged build compiles; asm-gated sources land
// in IgnoredFiles where asmparity expects them.
func LoadWithTags(tags string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string) // import path -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil && !strings.Contains(lp.ImportPath, "testdata/") {
			// Fixture packages under testdata/ are allowed to be broken in
			// interesting ways (e.g. an asm stub with no .s backing cannot
			// link); they are still parsed and type-checked from source.
			// Real packages must build, or dependents would fail later with
			// an opaque missing-export-data error.
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range targets {
		p, err := typeCheck(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheck parses the package's build-selected files with comments and
// runs the standard type checker over them, importing dependencies from
// export data.
func typeCheck(fset *token.FileSet, lp *listPackage, exports map[string]string) (*Package, error) {
	pkg := &Package{ImportPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	for _, f := range lp.GoFiles {
		path := abs(lp.Dir, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, file)
	}
	for _, f := range lp.IgnoredGoFiles {
		pkg.IgnoredFiles = append(pkg.IgnoredFiles, abs(lp.Dir, f))
	}
	for _, f := range lp.SFiles {
		pkg.OtherFiles = append(pkg.OtherFiles, abs(lp.Dir, f))
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect the first hard error below instead
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tp, err := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}

func abs(dir, name string) string {
	if strings.HasPrefix(name, "/") {
		return name
	}
	return dir + string(os.PathSeparator) + name
}
