package dataflow

import (
	"go/ast"
	"go/types"
)

// Cache memoizes per-function dataflow results for one type-checked
// package, so several analyzers (and several walks within one analyzer)
// share CFGs and interval solutions instead of re-solving. The driver
// creates one Cache per package and hands it to every Pass.
type Cache struct {
	info *types.Info
	cfgs map[ast.Node]*Graph
	ivs  map[ast.Node]*IntervalFacts
	file map[*ast.File]*IntervalFacts
}

// NewCache returns an empty cache over one package's type information.
func NewCache(info *types.Info) *Cache {
	return &Cache{
		info: info,
		cfgs: make(map[ast.Node]*Graph),
		ivs:  make(map[ast.Node]*IntervalFacts),
		file: make(map[*ast.File]*IntervalFacts),
	}
}

// Info returns the package type information the cache was built over.
func (c *Cache) Info() *types.Info { return c.info }

// CFG returns the control-flow graph of fn (an *ast.FuncDecl or
// *ast.FuncLit), or nil for body-less declarations.
func (c *Cache) CFG(fn ast.Node) *Graph {
	if g, ok := c.cfgs[fn]; ok {
		return g
	}
	g := New(c.info, fn)
	c.cfgs[fn] = g
	return g
}

// Intervals returns the interval facts of fn (an *ast.FuncDecl or
// *ast.FuncLit). Facts cover only fn's own body, not nested literals.
func (c *Cache) Intervals(fn ast.Node) *IntervalFacts {
	if f, ok := c.ivs[fn]; ok {
		return f
	}
	f := Intervals(c.info, fn)
	c.ivs[fn] = f
	return f
}

// FileIntervals merges the interval facts of every function declared in
// file — top-level FuncDecls and all nested FuncLits, each analyzed as
// its own function — keyed by conversion call site. This is the lookup
// analyzers use when walking a whole file.
func (c *Cache) FileIntervals(file *ast.File) *IntervalFacts {
	if f, ok := c.file[file]; ok {
		return f
	}
	merged := &IntervalFacts{Conv: make(map[*ast.CallExpr]Interval)}
	var fns []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fns = append(fns, n)
			}
		case *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	for _, fn := range fns {
		for call, iv := range c.Intervals(fn).Conv {
			merged.Conv[call] = iv
		}
	}
	c.file[file] = merged
	return merged
}
