package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckSrc parses and type-checks one self-contained file.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

func funcDecl(t *testing.T, file *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

func TestCFGLoopAndBackEdges(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	g := New(info, funcDecl(t, file, "f"))
	if g == nil {
		t.Fatal("nil graph")
	}
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if len(l.Backs) == 0 {
		t.Fatal("loop has no back edges")
	}
	for _, bk := range l.Backs {
		found := false
		for _, e := range bk.Succs {
			if e.To == l.Header {
				found = true
			}
		}
		if !found {
			t.Errorf("back block %d has no edge to header %d", bk.Index, l.Header.Index)
		}
	}
	body := g.NaturalLoop(l)
	if !body[l.Header] {
		t.Error("natural loop misses its own header")
	}
}

func TestCFGCondOnEdges(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f(x int) int {
	if x > 0 {
		return 1
	}
	return 0
}`)
	g := New(info, funcDecl(t, file, "f"))
	var trueEdges, falseEdges int
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Cond != nil {
				if e.Branch {
					trueEdges++
				} else {
					falseEdges++
				}
			}
		}
	}
	if trueEdges != 1 || falseEdges != 1 {
		t.Fatalf("cond edges = %d true / %d false, want 1/1", trueEdges, falseEdges)
	}
}

func TestCFGPanicTerminatesBlock(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f(x int) int {
	if x < 0 {
		panic("neg")
	}
	return x
}`)
	g := New(info, funcDecl(t, file, "f"))
	// The panic block must have no successors: the join after the if is
	// reached only via the x >= 0 edge.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						if len(blk.Succs) != 0 {
							t.Fatalf("panic block has %d successors, want 0", len(blk.Succs))
						}
						return
					}
				}
			}
		}
	}
	t.Fatal("panic block not found")
}

func TestCFGRangeHeader(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	g := New(info, funcDecl(t, file, "f"))
	if len(g.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(g.Loops))
	}
	var rh *RangeHeader
	for _, n := range g.Loops[0].Header.Nodes {
		if h, ok := n.(RangeHeader); ok {
			rh = &h
		}
	}
	if rh == nil {
		t.Fatal("range loop header has no RangeHeader node")
	}
}

func TestCFGSwitchGotoLabeledBreak(t *testing.T) {
	// Exercise the gnarlier statements; the assertion is just that the
	// graph builds and every reachable block is finite.
	_, file, info := typecheckSrc(t, `package p
func f(x int) int {
	s := 0
outer:
	for i := 0; i < x; i++ {
		switch {
		case x > 10:
			s++
			fallthrough
		case x > 5:
			s += 2
		default:
			break outer
		}
		if s > 100 {
			goto done
		}
	}
done:
	return s
}`)
	g := New(info, funcDecl(t, file, "f"))
	if g == nil || len(g.Blocks) == 0 {
		t.Fatal("graph did not build")
	}
	reach := reachableFrom(g.Entry, nil)
	if !reach[g.Exit] {
		t.Fatal("exit unreachable")
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f() {
	defer func() {}()
}`)
	g := New(info, funcDecl(t, file, "f"))
	if len(g.Defers) != 1 {
		t.Fatalf("defers = %d, want 1", len(g.Defers))
	}
}

// TestCFGNestedLoopBacks pins the dominance-based back-edge test: the
// inner loop's pre-header is reachable from the inner header by going
// around the OUTER loop, but it is not a back edge, and the inner
// natural loop must not swallow the enclosing function.
func TestCFGNestedLoopBacks(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f(xs [][]int) int {
	best := 0
	for _, x := range xs {
		for _, v := range x {
			if v > best {
				best = v
			}
		}
	}
	return best
}`)
	g := New(info, funcDecl(t, file, "f"))
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(g.Loops))
	}
	outer, inner := g.Loops[0], g.Loops[1]
	if len(outer.Backs) != 1 || len(inner.Backs) != 1 {
		t.Fatalf("back edges: outer %d inner %d, want 1 and 1", len(outer.Backs), len(inner.Backs))
	}
	outerNat := g.NaturalLoop(outer)
	innerNat := g.NaturalLoop(inner)
	if len(innerNat) >= len(outerNat) {
		t.Fatalf("inner natural loop (%d blocks) not nested inside outer (%d blocks)", len(innerNat), len(outerNat))
	}
	for b := range innerNat {
		if !outerNat[b] {
			t.Fatalf("inner loop block %d escapes the outer natural loop", b.Index)
		}
	}
	if innerNat[g.Entry] || innerNat[g.Exit] {
		t.Fatal("inner natural loop swallowed entry/exit")
	}
}
