package dataflow

import "go/ast"

// Lattice is the pluggable abstract domain for the forward solver. F is
// the per-program-point fact. Implementations must make Join/Widen
// monotone and Widen must bound every ascending chain (the solver
// switches from Join to Widen on a block after widenAfter visits, so a
// lattice of infinite height — intervals — still terminates).
type Lattice[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Join merges two facts at a control-flow merge point.
	Join(a, b F) F
	// Equal reports whether two facts are indistinguishable (fixpoint
	// detection).
	Equal(a, b F) bool
	// Widen accelerates convergence: it must return a fact at least as
	// large as next, such that repeated widening stabilizes.
	Widen(prev, next F) F
	// Transfer pushes a fact through one block node (a statement, a
	// switch tag expression, or a RangeHeader).
	Transfer(n ast.Node, f F) F
	// Refine narrows a fact with the knowledge that cond evaluated to
	// branch on the edge being followed.
	Refine(cond ast.Expr, branch bool, f F) F
}

// widenAfter is how many times a block's input may change before joins
// are widened. High enough that short clamp chains converge exactly,
// low enough that counted loops don't spin.
const widenAfter = 16

// Forward computes the least (modulo widening) fixpoint of l over g and
// returns the fact at the ENTRY of each reached block. Unreachable
// blocks are absent from the result. Callers recover per-statement
// facts by replaying Transfer through a block's Nodes.
func Forward[F any](g *Graph, l Lattice[F]) map[*Block]F {
	if g == nil {
		return nil
	}
	in := make(map[*Block]F, len(g.Blocks))
	visits := make(map[*Block]int)
	inQueue := make(map[*Block]bool)
	in[g.Entry] = l.Entry()
	queue := []*Block{g.Entry}
	inQueue[g.Entry] = true
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		inQueue[blk] = false
		f := in[blk]
		for _, n := range blk.Nodes {
			f = l.Transfer(n, f)
		}
		for _, e := range blk.Succs {
			out := f
			if e.Cond != nil {
				out = l.Refine(e.Cond, e.Branch, out)
			}
			old, seen := in[e.To]
			var next F
			if !seen {
				next = out
			} else {
				next = l.Join(old, out)
				if l.Equal(next, old) {
					continue
				}
				visits[e.To]++
				if visits[e.To] > widenAfter {
					next = l.Widen(old, next)
					if l.Equal(next, old) {
						continue
					}
				}
			}
			in[e.To] = next
			if !inQueue[e.To] {
				inQueue[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return in
}
