// Package dataflow builds per-function control-flow graphs from go/ast
// and runs forward fixpoint analyses over them. It is the semantic tier
// under trlint (DESIGN.md §13): the syntactic analyzers inspect one
// node at a time, while the dataflow analyzers (intrange, ctxguard,
// lockguard) reason about what must hold along every path.
//
// The package is stdlib-only, like the rest of the analysis suite: no
// golang.org/x/tools/go/cfg or /ssa. The CFG is deliberately simpler
// than ssa — blocks hold raw ast nodes in execution order, and branch
// conditions live on the *edges* (Edge.Cond with Edge.Branch giving the
// condition's truth on that edge), which is exactly the shape a
// branch-refining interval analysis wants.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Graph is the control-flow graph of one function body. Blocks[0] is
// Entry; Exit is a synthetic empty block every return (and the body's
// fall-off-the-end path) jumps to. Unreachable blocks may exist (code
// after return/panic); they have no predecessors and the solver never
// visits them.
type Graph struct {
	Fn     ast.Node // *ast.FuncDecl or *ast.FuncLit
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Loops  []Loop
	Defers []*ast.DeferStmt // defers recorded in source order
}

// Block is a straight-line run of statements. Nodes holds statements
// and header expressions in execution order; control transfers only via
// Succs. Branch conditions are NOT in Nodes — they are on the outgoing
// edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
	Preds []*Block
}

// Edge is one control transfer. Cond, when non-nil, is the branch
// condition whose truth value on this edge is Branch; a dataflow lattice
// may refine its fact with that constraint before it flows into To.
type Edge struct {
	To     *Block
	Cond   ast.Expr
	Branch bool
}

// Loop records one for/range statement: its header block (the block
// re-entered each iteration) and the blocks with a back edge to it.
// Backs is computed after construction as the header predecessors that
// are reachable from the header itself.
type Loop struct {
	Stmt   ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Header *Block
	Backs  []*Block
}

// RangeHeader is the node placed in a range loop's header block. It
// wraps the whole *ast.RangeStmt, but consumers must treat it as "the
// per-iteration Key/Value assignment from X" — scanning the wrapped
// statement's Body through it would wrongly attribute body facts to the
// header (the body has its own blocks).
type RangeHeader struct {
	*ast.RangeStmt
}

// New builds the CFG for fn, which must be an *ast.FuncDecl or
// *ast.FuncLit with a non-nil body; it returns nil otherwise (e.g. a
// body-less assembly stub declaration). info may be nil; it is only
// used to type callees for termination detection (panic/os.Exit).
func New(info *types.Info, fn ast.Node) *Graph {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return nil
	}
	b := &builder{
		info:   info,
		g:      &Graph{Fn: fn},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{Index: -1}
	b.cur = b.g.Entry
	b.stmt(body)
	b.jump(b.g.Exit)
	for _, ref := range b.gotos {
		if to := b.labels[ref.name]; to != nil && ref.from != nil {
			b.edgeTo(ref.from, to, nil, false)
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	b.finish()
	return b.g
}

// target is one enclosing breakable/continuable statement.
type target struct {
	label    string // "" when the statement is unlabeled
	brk      *Block // break destination
	cont     *Block // continue destination; nil for switch/select
	isSwitch bool
}

type gotoRef struct {
	from *Block
	name string
}

type builder struct {
	info    *types.Info
	g       *Graph
	cur     *Block // nil: current point is unreachable
	targets []target
	labels  map[string]*Block
	gotos   []gotoRef
	fall    *Block // fallthrough destination inside a switch clause
	pending string // label awaiting attachment to the next loop/switch
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edgeTo(from, to *Block, cond ast.Expr, branch bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Branch: branch})
}

// jump terminates the current block with an unconditional edge to dst
// (if the current point is reachable) and marks the point unreachable.
func (b *builder) jump(dst *Block) {
	if b.cur != nil {
		b.edgeTo(b.cur, dst, nil, false)
	}
	b.cur = nil
}

// add appends a node to the current block, materializing an unreachable
// block if needed so that dead code still gets built (gotos may target
// labels inside it).
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// reach ensures there is a current block.
func (b *builder) reach() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) takePending() string {
	l := b.pending
	b.pending = ""
	return l
}

func (b *builder) findTarget(label string, forContinue bool) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label != "" && t.label != label {
			continue
		}
		if forContinue {
			if t.cont == nil {
				continue // continue skips switch/select
			}
			return t.cont
		}
		return t.brk
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.jump(lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(label, false); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.findTarget(label, true); t != nil {
				b.jump(t)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.gotos = append(b.gotos, gotoRef{b.cur, label})
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.jump(b.fall)
			} else {
				b.cur = nil
			}
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			b.cur = nil // panic/os.Exit/…: no fallthrough successor
		}
	default:
		// AssignStmt, IncDecStmt, DeclStmt, GoStmt, SendStmt, EmptyStmt…
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	cond := b.reach()
	then := b.newBlock()
	b.edgeTo(cond, then, s.Cond, true)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur
	if s.Else == nil {
		join := b.newBlock()
		b.edgeTo(cond, join, s.Cond, false)
		if thenEnd != nil {
			b.edgeTo(thenEnd, join, nil, false)
		}
		b.cur = join
		return
	}
	els := b.newBlock()
	b.edgeTo(cond, els, s.Cond, false)
	b.cur = els
	b.stmt(s.Else)
	elseEnd := b.cur
	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	join := b.newBlock()
	if thenEnd != nil {
		b.edgeTo(thenEnd, join, nil, false)
	}
	if elseEnd != nil {
		b.edgeTo(elseEnd, join, nil, false)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takePending()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	header := b.newBlock()
	b.jump(header)
	b.g.Loops = append(b.g.Loops, Loop{Stmt: s, Header: header})
	body := b.newBlock()
	after := b.newBlock()
	if s.Cond != nil {
		b.edgeTo(header, body, s.Cond, true)
		b.edgeTo(header, after, s.Cond, false)
	} else {
		b.edgeTo(header, body, nil, false) // `for {}`: exits only via break
	}
	cont := header
	if s.Post != nil {
		post := b.newBlock()
		b.cur = post
		b.stmt(s.Post)
		b.jump(header)
		cont = post
	}
	b.targets = append(b.targets, target{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmt(s.Body)
	b.jump(cont)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takePending()
	header := b.newBlock()
	b.jump(header)
	header.Nodes = append(header.Nodes, RangeHeader{s})
	b.g.Loops = append(b.g.Loops, Loop{Stmt: s, Header: header})
	body := b.newBlock()
	after := b.newBlock()
	b.edgeTo(header, body, nil, false)
	b.edgeTo(header, after, nil, false)
	b.targets = append(b.targets, target{label: label, brk: after, cont: header})
	b.cur = body
	b.stmt(s.Body)
	b.jump(header)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takePending()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.reach()
	if s.Tag != nil {
		head.Nodes = append(head.Nodes, s.Tag)
	}
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after, isSwitch: true})
	clauses := s.Body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	savedFall := b.fall
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edgeTo(head, blocks[i], nil, false)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		if i+1 < len(clauses) {
			b.fall = blocks[i+1]
		} else {
			b.fall = nil
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(after)
	}
	b.fall = savedFall
	if !hasDefault {
		b.edgeTo(head, after, nil, false)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takePending()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.reach()
	head.Nodes = append(head.Nodes, s.Assign)
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after, isSwitch: true})
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edgeTo(head, blk, nil, false)
		b.cur = blk
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(after)
	}
	if !hasDefault {
		b.edgeTo(head, after, nil, false)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takePending()
	head := b.reach()
	// Select evaluates every clause's channel operand (and the value of
	// a send) up front, in source order, before blocking — so those
	// expressions execute on EVERY pass through the statement, whichever
	// clause fires, and belong in the head block. The comm statement
	// itself (the received-value binding) stays in its clause block.
	for _, c := range s.Body.List {
		switch comm := c.(*ast.CommClause).Comm.(type) {
		case *ast.SendStmt:
			b.add(comm.Chan)
			b.add(comm.Value)
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				b.add(u.X)
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					b.add(u.X)
				}
			}
		}
	}
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after, isSwitch: true})
	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edgeTo(head, blk, nil, false)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.jump(after)
	}
	if !hasDefault && len(s.Body.List) == 0 {
		// `select {}` blocks forever; keep after unreachable.
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// terminates reports whether call never returns: the panic builtin,
// os.Exit, runtime.Goexit, or the log.Fatal family.
func (b *builder) terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			if obj, ok := b.info.Uses[fun]; ok {
				_, isBuiltin := obj.(*types.Builtin)
				return isBuiltin
			}
		}
		return true
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		if b.info != nil {
			if _, isPkg := b.info.Uses[pkg].(*types.PkgName); !isPkg {
				return false
			}
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit",
			"log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// finish fills Preds and each Loop's Backs: the header predecessors
// the header dominates, i.e. the true back-edge sources. Dominance is
// decided by deletion — header dominates p exactly when p becomes
// unreachable from entry once the header is removed. ("Reachable from
// the header" is NOT a correct test: the pre-header of an inner loop is
// reachable from the inner header by going around the enclosing loop,
// and using it would dissolve nested loops into their parents.)
func (b *builder) finish() {
	for _, blk := range b.g.Blocks {
		for _, e := range blk.Succs {
			e.To.Preds = append(e.To.Preds, blk)
		}
	}
	for i := range b.g.Loops {
		l := &b.g.Loops[i]
		reach := reachableFrom(b.g.Entry, nil)
		sansHeader := reachableFrom(b.g.Entry, l.Header)
		for _, p := range l.Header.Preds {
			if reach[p] && !sansHeader[p] {
				l.Backs = append(l.Backs, p)
			}
		}
	}
}

// reachableFrom walks successors from start, never entering avoid
// (which may be nil).
func reachableFrom(start, avoid *Block) map[*Block]bool {
	if start == avoid {
		return nil
	}
	seen := map[*Block]bool{start: true}
	work := []*Block{start}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range blk.Succs {
			if !seen[e.To] && e.To != avoid {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return seen
}

// NaturalLoop returns the set of blocks belonging to l: the header plus
// every block that reaches a back-edge source without passing through
// the header (computed by walking predecessors from the back sources).
func (g *Graph) NaturalLoop(l Loop) map[*Block]bool {
	in := map[*Block]bool{l.Header: true}
	work := make([]*Block, 0, len(l.Backs))
	for _, bk := range l.Backs {
		if !in[bk] {
			in[bk] = true
			work = append(work, bk)
		}
	}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range blk.Preds {
			if !in[p] {
				in[p] = true
				work = append(work, p)
			}
		}
	}
	return in
}
