package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// Interval is an inclusive range of values, with ±Inf for unbounded
// ends. Bounds are float64; to keep float64 rounding from silently
// shrinking an integer bound, every integer-arithmetic result is passed
// through norm, which saturates any bound of magnitude beyond 2^53 (the
// last integer width float64 represents exactly) toward the safe side.
// Float-typed arithmetic instead nudges bounds outward by one ulp.
type Interval struct {
	Lo, Hi float64
}

// maxExact is 2^53: the largest magnitude at which every integer is
// exactly representable in a float64.
const maxExact = float64(1 << 53)

var top = Interval{math.Inf(-1), math.Inf(1)}

// Top returns the unbounded interval.
func Top() Interval { return top }

// norm saturates bounds whose magnitude exceeds 2^53: past that,
// float64 rounding could move a computed bound inward (unsound), so the
// bound is replaced by the nearest value that is safe regardless of
// rounding direction.
func (iv Interval) norm() Interval {
	if iv.Lo < -maxExact {
		iv.Lo = math.Inf(-1)
	} else if iv.Lo > maxExact {
		iv.Lo = maxExact
	}
	if iv.Hi > maxExact {
		iv.Hi = math.Inf(1)
	} else if iv.Hi < -maxExact {
		iv.Hi = -maxExact
	}
	return iv
}

// outward widens both bounds by one ulp — the float-arithmetic
// counterpart of norm (nearest-rounding on a bound may round inward).
func (iv Interval) outward() Interval {
	if !math.IsInf(iv.Lo, 0) {
		iv.Lo = math.Nextafter(iv.Lo, math.Inf(-1))
	}
	if !math.IsInf(iv.Hi, 0) {
		iv.Hi = math.Nextafter(iv.Hi, math.Inf(1))
	}
	return iv
}

func (iv Interval) finite() bool {
	return !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0)
}

func joinIv(a, b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// typeDomain is the interval every value of t lies in, normed: int64,
// int, uint64, uint and uintptr have bounds past 2^53 and so come back
// (partially) unbounded.
func typeDomain(t types.Type) Interval {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return top
	}
	d, ok := rawDomain(b.Kind())
	if !ok {
		return top
	}
	return d.norm()
}

// rawDomain is the exact (un-normed) domain of an integer kind. The
// int64/uint64 upper bounds round up under float64 — harmless, because
// every interval tested against them has already been normed, so its
// finite bounds are ≤ 2^53.
func rawDomain(k types.BasicKind) (Interval, bool) {
	switch k {
	case types.Int8:
		return Interval{math.MinInt8, math.MaxInt8}, true
	case types.Int16:
		return Interval{math.MinInt16, math.MaxInt16}, true
	case types.Int32:
		return Interval{math.MinInt32, math.MaxInt32}, true
	case types.Int64, types.Int, types.UntypedInt:
		return Interval{math.MinInt64, math.MaxInt64}, true
	case types.Uint8:
		return Interval{0, math.MaxUint8}, true
	case types.Uint16:
		return Interval{0, math.MaxUint16}, true
	case types.Uint32:
		return Interval{0, math.MaxUint32}, true
	case types.Uint64, types.Uint, types.Uintptr:
		return Interval{0, math.MaxUint64}, true
	}
	return Interval{}, false
}

// Domain returns the exact (un-normed) value domain of an integer
// type, for callers that need to compare an operand interval against
// the destination range (e.g. intrange's definite-overflow check).
func Domain(t types.Type) (Interval, bool) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return Interval{}, false
	}
	return rawDomain(b.Kind())
}

// Fits reports whether every value in src — the abstract interval of an
// expression of static type srcT — converts to dstT without leaving
// dstT's integer domain. Float sources follow Go conversion semantics
// (truncation toward zero, which is monotone); NaN is outside the model
// — a clamp proof over floats assumes the clamped value is not NaN,
// the same blind spot a hand-written clamp has.
func Fits(src Interval, srcT, dstT types.Type) bool {
	db, ok := dstT.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	dom, ok := rawDomain(db.Kind())
	if !ok {
		return false
	}
	sb, ok := srcT.Underlying().(*types.Basic)
	if !ok || sb.Info()&types.IsNumeric == 0 {
		return false
	}
	if !src.finite() {
		return false
	}
	lo, hi := src.Lo, src.Hi
	if sb.Info()&types.IsFloat != 0 {
		lo, hi = math.Trunc(lo), math.Trunc(hi)
	}
	return lo >= dom.Lo && hi <= dom.Hi
}

// Env maps tracked local variables to their interval at a program
// point. A nil Env is the unreachable fact (bottom); a missing key
// means "anything its type allows". Envs are persistent values: every
// mutation goes through clone.
type Env map[*types.Var]Interval

func (e Env) clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// evaluator evaluates expressions and statements over Env. tracked
// holds the function-local numeric variables that are never
// address-taken and never touched by a nested function literal — the
// only ones whose env entry can be trusted across statements.
type evaluator struct {
	info    *types.Info
	tracked map[*types.Var]bool
}

func newEvaluator(info *types.Info, fn ast.Node) *evaluator {
	ev := &evaluator{info: info, tracked: make(map[*types.Var]bool)}
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok && isNumericVar(v) {
				ev.tracked[v] = true
			}
		}
		return true
	})
	// Second pass: untrack anything address-taken or referenced inside
	// a nested function literal (a closure may mutate it at any time).
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if ast.Node(n) == fn {
				return true // the root literal is the function under analysis
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := ev.info.Uses[id].(*types.Var); ok {
						delete(ev.tracked, v)
					}
					if v, ok := ev.info.Defs[id].(*types.Var); ok {
						delete(ev.tracked, v)
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := unparen(n.X).(*ast.Ident); ok {
					if v, ok := ev.info.Uses[id].(*types.Var); ok {
						delete(ev.tracked, v)
					}
				}
			}
		}
		return true
	})
	return ev
}

func isNumericVar(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func (ev *evaluator) objOf(id *ast.Ident) types.Object {
	if o := ev.info.Defs[id]; o != nil {
		return o
	}
	return ev.info.Uses[id]
}

func (ev *evaluator) typeOf(e ast.Expr) types.Type {
	if tv, ok := ev.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (ev *evaluator) domainOf(e ast.Expr) Interval {
	if t := ev.typeOf(e); t != nil {
		return typeDomain(t)
	}
	return top
}

// eval computes the interval of e under env. It is pure: no env
// mutation.
func (ev *evaluator) eval(e ast.Expr, env Env) Interval {
	if tv, ok := ev.info.Types[e]; ok && tv.Value != nil {
		if iv, ok := constInterval(tv.Value); ok {
			return iv
		}
		return top
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ev.eval(e.X, env)
	case *ast.Ident:
		if v, ok := ev.objOf(e).(*types.Var); ok {
			if iv, ok := env[v]; ok {
				return iv
			}
		}
		return ev.domainOf(e)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			x := ev.eval(e.X, env)
			return ev.clampToType(Interval{-x.Hi, -x.Lo}, ev.typeOf(e))
		case token.ADD:
			return ev.eval(e.X, env)
		}
		return ev.domainOf(e)
	case *ast.BinaryExpr:
		return ev.binop(e.Op, ev.eval(e.X, env), ev.eval(e.Y, env), ev.typeOf(e))
	case *ast.CallExpr:
		return ev.evalCall(e, env)
	default:
		return ev.domainOf(e)
	}
}

func (ev *evaluator) evalCall(call *ast.CallExpr, env Env) Interval {
	// Conversion T(x)?
	if tv, ok := ev.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return ev.convert(ev.eval(call.Args[0], env), ev.typeOf(call.Args[0]), tv.Type)
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := ev.objOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				return Interval{0, math.Inf(1)}
			case "min", "max":
				if len(call.Args) > 0 {
					iv := ev.eval(call.Args[0], env)
					for _, a := range call.Args[1:] {
						b := ev.eval(a, env)
						if id.Name == "min" {
							iv = Interval{math.Min(iv.Lo, b.Lo), math.Min(iv.Hi, b.Hi)}
						} else {
							iv = Interval{math.Max(iv.Lo, b.Lo), math.Max(iv.Hi, b.Hi)}
						}
					}
					return iv
				}
			}
		}
	}
	return ev.domainOf(call)
}

// convert models a Go conversion of a value in src (static type srcT)
// to dst: the identity when the interval provably fits, the full
// destination domain when it may not (overflow wraps or is
// implementation-defined — no tighter claim is sound).
func (ev *evaluator) convert(src Interval, srcT, dstT types.Type) Interval {
	if srcT == nil || dstT == nil {
		return top
	}
	db, ok := dstT.Underlying().(*types.Basic)
	if !ok {
		return top
	}
	sb, ok := srcT.Underlying().(*types.Basic)
	if !ok || sb.Info()&types.IsNumeric == 0 {
		return typeDomain(dstT)
	}
	switch {
	case db.Info()&types.IsInteger != 0:
		if Fits(src, srcT, dstT) {
			if sb.Info()&types.IsFloat != 0 {
				return Interval{math.Trunc(src.Lo), math.Trunc(src.Hi)}
			}
			return src
		}
		return typeDomain(dstT)
	case db.Kind() == types.Float32:
		// Rounding to float32 may move past a float64 bound; widen by a
		// float32 ulp on each side.
		out := src
		if !math.IsInf(out.Lo, 0) {
			out.Lo = float64(math.Nextafter32(float32(out.Lo), float32(math.Inf(-1))))
		}
		if !math.IsInf(out.Hi, 0) {
			out.Hi = float64(math.Nextafter32(float32(out.Hi), float32(math.Inf(1))))
		}
		return out
	case db.Info()&types.IsFloat != 0:
		return src // int→float64 / float64→float64: exact for normed bounds
	}
	return top
}

// clampToType keeps a computed math interval when it provably fits t's
// exact domain and otherwise returns the full domain: overflow wraps,
// and a wrapped value can land anywhere in the type.
func (ev *evaluator) clampToType(iv Interval, t types.Type) Interval {
	if t == nil {
		return top
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return top
	}
	if b.Info()&types.IsFloat != 0 {
		return iv.outward()
	}
	dom, ok := rawDomain(b.Kind())
	if !ok {
		return top
	}
	iv = iv.norm()
	if iv.finite() && iv.Lo >= dom.Lo && iv.Hi <= dom.Hi {
		return iv
	}
	return typeDomain(t)
}

func (ev *evaluator) binop(op token.Token, a, b Interval, t types.Type) Interval {
	var iv Interval
	switch op {
	case token.ADD:
		iv = Interval{a.Lo + b.Lo, a.Hi + b.Hi}
	case token.SUB:
		iv = Interval{a.Lo - b.Hi, a.Hi - b.Lo}
	case token.MUL:
		c1, c2 := mulBound(a.Lo, b.Lo), mulBound(a.Lo, b.Hi)
		c3, c4 := mulBound(a.Hi, b.Lo), mulBound(a.Hi, b.Hi)
		iv = Interval{
			math.Min(math.Min(c1, c2), math.Min(c3, c4)),
			math.Max(math.Max(c1, c2), math.Max(c3, c4)),
		}
	case token.QUO:
		iv = ev.divIv(a, b, t)
	case token.REM:
		iv = remIv(a, b)
	case token.SHL:
		iv = shiftIv(a, b, true)
	case token.SHR:
		iv = shiftIv(a, b, false)
	case token.AND:
		switch {
		case b.Lo >= 0 && !math.IsInf(b.Hi, 1):
			iv = Interval{0, b.Hi}
			if a.Lo >= 0 {
				iv.Hi = math.Min(iv.Hi, a.Hi)
			}
		case a.Lo >= 0 && !math.IsInf(a.Hi, 1):
			iv = Interval{0, a.Hi}
		default:
			return ev.safeDomain(t)
		}
	case token.OR, token.XOR:
		if a.Lo >= 0 && b.Lo >= 0 && !math.IsInf(a.Hi, 1) && !math.IsInf(b.Hi, 1) {
			iv = Interval{0, nextPow2(math.Max(a.Hi, b.Hi)) - 1}
		} else {
			return ev.safeDomain(t)
		}
	case token.AND_NOT:
		if a.Lo >= 0 {
			iv = Interval{0, a.Hi}
		} else {
			return ev.safeDomain(t)
		}
	default:
		return ev.safeDomain(t)
	}
	return ev.clampToType(iv, t)
}

func (ev *evaluator) safeDomain(t types.Type) Interval {
	if t == nil {
		return top
	}
	return typeDomain(t)
}

func mulBound(x, y float64) float64 {
	if x == 0 || y == 0 {
		return 0 // 0·(±Inf placeholder for "unbounded finite") is 0
	}
	return x * y
}

func (ev *evaluator) divIv(a, b Interval, t types.Type) Interval {
	isFloat := false
	if t != nil {
		if bt, ok := t.Underlying().(*types.Basic); ok {
			isFloat = bt.Info()&types.IsFloat != 0
		}
	}
	if b.Lo > 0 || b.Hi < 0 { // divisor bounded away from zero
		if b.finite() && a.finite() {
			c1, c2 := a.Lo/b.Lo, a.Lo/b.Hi
			c3, c4 := a.Hi/b.Lo, a.Hi/b.Hi
			lo := math.Min(math.Min(c1, c2), math.Min(c3, c4))
			hi := math.Max(math.Max(c1, c2), math.Max(c3, c4))
			if !isFloat {
				lo, hi = math.Trunc(lo), math.Trunc(hi)
			}
			return Interval{lo, hi}
		}
	}
	if !isFloat {
		// |x/y| ≤ |x| for any integer divisor the runtime accepts.
		m := math.Max(math.Abs(a.Lo), math.Abs(a.Hi))
		return Interval{-m, m}
	}
	return top
}

func remIv(a, b Interval) Interval {
	m := math.Max(math.Abs(b.Lo), math.Abs(b.Hi))
	var bound float64
	if math.IsInf(m, 1) {
		bound = math.Max(math.Abs(a.Lo), math.Abs(a.Hi))
	} else {
		bound = m - 1
		if am := math.Max(math.Abs(a.Lo), math.Abs(a.Hi)); am < bound {
			bound = am
		}
	}
	lo, hi := -bound, bound
	if a.Lo >= 0 {
		lo = 0
	}
	if a.Hi <= 0 {
		hi = 0
	}
	return Interval{lo, hi}
}

func shiftIv(a, b Interval, left bool) Interval {
	kLo, kHi := math.Max(0, b.Lo), b.Hi
	if kHi > 63 {
		kHi = 63
	}
	if kHi < kLo {
		return top
	}
	if left {
		p := Interval{math.Pow(2, kLo), math.Pow(2, kHi)}
		c1, c2 := mulBound(a.Lo, p.Lo), mulBound(a.Lo, p.Hi)
		c3, c4 := mulBound(a.Hi, p.Lo), mulBound(a.Hi, p.Hi)
		return Interval{
			math.Min(math.Min(c1, c2), math.Min(c3, c4)),
			math.Max(math.Max(c1, c2), math.Max(c3, c4)),
		}
	}
	if a.Lo >= 0 {
		hi := a.Hi
		if !math.IsInf(hi, 1) {
			hi = math.Floor(hi / math.Pow(2, kLo))
		}
		return Interval{0, hi}
	}
	m := math.Max(math.Abs(a.Lo), math.Abs(a.Hi))
	return Interval{-m, m}
}

func nextPow2(x float64) float64 {
	p := 1.0
	for p <= x && p < maxExact {
		p *= 2
	}
	return p
}

func constInterval(v constant.Value) (Interval, bool) {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, exact := constant.Float64Val(constant.ToFloat(v))
		iv := Interval{f, f}
		if !exact {
			iv = iv.outward()
		}
		return iv.norm(), true
	}
	return Interval{}, false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---- the lattice ----

type ivLattice struct {
	ev *evaluator
}

func (l ivLattice) Entry() Env { return Env{} }

func (l ivLattice) Join(a, b Env) Env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Env)
	for v, av := range a {
		if bv, ok := b[v]; ok {
			out[v] = joinIv(av, bv)
		}
	}
	return out
}

func (l ivLattice) Equal(a, b Env) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	for v, av := range a {
		bv, ok := b[v]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

func (l ivLattice) Widen(old, next Env) Env {
	if old == nil || next == nil {
		return next
	}
	out := make(Env, len(next))
	for v, niv := range next {
		oiv, ok := old[v]
		if !ok {
			out[v] = niv
			continue
		}
		w := niv
		if niv.Lo < oiv.Lo {
			w.Lo = math.Inf(-1)
		}
		if niv.Hi > oiv.Hi {
			w.Hi = math.Inf(1)
		}
		out[v] = w
	}
	return out
}

func (l ivLattice) Transfer(n ast.Node, f Env) Env {
	if f == nil {
		return nil
	}
	ev := l.ev
	switch n := n.(type) {
	case *ast.AssignStmt:
		return ev.assign(n, f)
	case *ast.IncDecStmt:
		cur := ev.eval(n.X, f)
		one := Interval{1, 1}
		op := token.ADD
		if n.Tok == token.DEC {
			op = token.SUB
		}
		return ev.setVar(n.X, ev.binop(op, cur, one, ev.typeOf(n.X)), f)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return f
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			switch {
			case len(vs.Values) == 0:
				for _, name := range vs.Names {
					f = ev.setIdent(name, Interval{0, 0}, f) // zero value
				}
			case len(vs.Values) == len(vs.Names):
				for i, name := range vs.Names {
					f = ev.setIdent(name, ev.eval(vs.Values[i], f), f)
				}
			default: // tuple from one call
				for _, name := range vs.Names {
					f = ev.dropIdent(name, f)
				}
			}
		}
		return f
	case RangeHeader:
		return ev.rangeAssign(n, f)
	}
	return f
}

func (l ivLattice) Refine(cond ast.Expr, branch bool, f Env) Env {
	return l.ev.refine(cond, branch, f)
}

func (ev *evaluator) assign(s *ast.AssignStmt, env Env) Env {
	if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
		if len(s.Lhs) == len(s.Rhs) {
			vals := make([]Interval, len(s.Rhs))
			for i := range s.Rhs {
				vals[i] = ev.eval(s.Rhs[i], env) // all RHS at the pre-state
			}
			for i, lhs := range s.Lhs {
				env = ev.setVar(lhs, vals[i], env)
			}
			return env
		}
		for _, lhs := range s.Lhs { // tuple assignment
			env = ev.dropVar(lhs, env)
		}
		return env
	}
	// Compound x op= e.
	op, ok := compoundOp(s.Tok)
	if !ok || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return env
	}
	cur := ev.eval(s.Lhs[0], env)
	rhs := ev.eval(s.Rhs[0], env)
	return ev.setVar(s.Lhs[0], ev.binop(op, cur, rhs, ev.typeOf(s.Lhs[0])), env)
}

func compoundOp(t token.Token) (token.Token, bool) {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT, true
	}
	return token.ILLEGAL, false
}

func (ev *evaluator) rangeAssign(rh RangeHeader, env Env) Env {
	s := rh.RangeStmt
	if s.Key != nil {
		var iv Interval
		known := false
		if xt := ev.typeOf(s.X); xt != nil {
			switch u := xt.Underlying().(type) {
			case *types.Slice, *types.Array:
				iv, known = Interval{0, math.Inf(1)}, true
			case *types.Pointer:
				if _, isArr := u.Elem().Underlying().(*types.Array); isArr {
					iv, known = Interval{0, math.Inf(1)}, true
				}
			case *types.Basic:
				if u.Info()&types.IsString != 0 {
					iv, known = Interval{0, math.Inf(1)}, true
				} else if u.Info()&types.IsInteger != 0 { // range over int (go1.22)
					n := ev.eval(s.X, env)
					iv, known = Interval{0, math.Max(0, n.Hi-1)}, true
				}
			}
		}
		if known {
			env = ev.setVar(s.Key, iv, env)
		} else {
			env = ev.dropVar(s.Key, env)
		}
	}
	if s.Value != nil {
		env = ev.dropVar(s.Value, env)
	}
	return env
}

func (ev *evaluator) setVar(lhs ast.Expr, iv Interval, env Env) Env {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return env
	}
	return ev.setIdent(id, iv, env)
}

func (ev *evaluator) setIdent(id *ast.Ident, iv Interval, env Env) Env {
	v, ok := ev.objOf(id).(*types.Var)
	if !ok || !ev.tracked[v] {
		return env
	}
	if env == nil {
		return nil
	}
	env = env.clone()
	env[v] = iv
	return env
}

func (ev *evaluator) dropVar(lhs ast.Expr, env Env) Env {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return env
	}
	return ev.dropIdent(id, env)
}

func (ev *evaluator) dropIdent(id *ast.Ident, env Env) Env {
	v, ok := ev.objOf(id).(*types.Var)
	if !ok {
		return env
	}
	if _, present := env[v]; !present {
		return env
	}
	env = env.clone()
	delete(env, v)
	return env
}

// refine narrows env with the knowledge that cond evaluated to truth.
// It understands !, parens, comparisons against anything evaluable, the
// true edge of &&, and — by De Morgan — the false edge of || (both
// disjuncts are false there: `if e < 0 || e > hi { panic }` proves
// e ∈ [0,hi] on the fallthrough edge). A contradiction returns nil:
// the edge is dead.
func (ev *evaluator) refine(cond ast.Expr, truth bool, env Env) Env {
	if env == nil {
		return nil
	}
	switch c := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return ev.refine(c.X, !truth, env)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				return ev.refine(c.Y, true, ev.refine(c.X, true, env))
			}
		case token.LOR:
			if !truth {
				return ev.refine(c.Y, false, ev.refine(c.X, false, env))
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return ev.refineCmp(c, truth, env)
		}
	}
	return env
}

func (ev *evaluator) refineCmp(c *ast.BinaryExpr, truth bool, env Env) Env {
	op := c.Op
	if !truth {
		op = negateCmp(op)
	}
	if op == token.NEQ {
		return env // x != y carves a hole, not an interval
	}
	integral := ev.isIntegral(c.X) && ev.isIntegral(c.Y)
	xiv := ev.eval(c.X, env)
	yiv := ev.eval(c.Y, env)
	env = ev.clampVar(c.X, op, yiv, integral, env)
	env = ev.clampVar(c.Y, flipCmp(op), xiv, integral, env)
	return env
}

func (ev *evaluator) isIntegral(e ast.Expr) bool {
	t := ev.typeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// clampVar applies `e op bound` when e is a tracked variable: e's
// interval shrinks against the bound interval's far edge (strict
// comparisons tighten by 1 in the all-integer case).
func (ev *evaluator) clampVar(e ast.Expr, op token.Token, bound Interval, integral bool, env Env) Env {
	if env == nil {
		return nil
	}
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return env
	}
	v, ok := ev.objOf(id).(*types.Var)
	if !ok || !ev.tracked[v] {
		return env
	}
	cur, ok := env[v]
	if !ok {
		cur = typeDomain(v.Type())
	}
	eps := 0.0
	if integral {
		eps = 1
	}
	next := cur
	switch op {
	case token.LSS:
		if h := bound.Hi - eps; h < next.Hi {
			next.Hi = h
		}
	case token.LEQ:
		if bound.Hi < next.Hi {
			next.Hi = bound.Hi
		}
	case token.GTR:
		if lo := bound.Lo + eps; lo > next.Lo {
			next.Lo = lo
		}
	case token.GEQ:
		if bound.Lo > next.Lo {
			next.Lo = bound.Lo
		}
	case token.EQL:
		if bound.Lo > next.Lo {
			next.Lo = bound.Lo
		}
		if bound.Hi < next.Hi {
			next.Hi = bound.Hi
		}
	default:
		return env
	}
	if next.Lo > next.Hi {
		return nil // contradiction: this edge cannot be taken
	}
	if next == cur {
		return env
	}
	env = env.clone()
	env[v] = next
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // EQL is symmetric
}

// ---- facts ----

// IntervalFacts caches, for every type-conversion call in one function,
// the interval of its operand at that program point.
type IntervalFacts struct {
	Conv map[*ast.CallExpr]Interval
}

// Intervals solves the interval analysis over fn (an *ast.FuncDecl or
// *ast.FuncLit) and replays it to record the operand interval at every
// conversion site. Nested function literals are NOT descended into —
// analyze them separately; their conversions get their own facts.
func Intervals(info *types.Info, fn ast.Node) *IntervalFacts {
	facts := &IntervalFacts{Conv: make(map[*ast.CallExpr]Interval)}
	g := New(info, fn)
	if g == nil {
		return facts
	}
	ev := newEvaluator(info, fn)
	lat := ivLattice{ev}
	in := Forward[Env](g, lat)
	for _, blk := range g.Blocks {
		env, reached := in[blk]
		if !reached {
			continue
		}
		for _, n := range blk.Nodes {
			ev.recordConvs(n, env, facts)
			env = lat.Transfer(n, env)
		}
		for _, e := range blk.Succs {
			if e.Cond != nil {
				ev.recordConvs(e.Cond, env, facts)
			}
		}
	}
	return facts
}

func (ev *evaluator) recordConvs(n ast.Node, env Env, facts *IntervalFacts) {
	if rh, ok := n.(RangeHeader); ok {
		// Only the header's own expressions; Body belongs to other blocks.
		ev.recordConvs(rh.X, env, facts)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := ev.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			facts.Conv[call] = ev.eval(call.Args[0], env)
		}
		return true
	})
}

// ProvesConv reports whether the recorded operand interval at call
// proves the conversion cannot leave the destination type's domain.
func (f *IntervalFacts) ProvesConv(info *types.Info, call *ast.CallExpr) bool {
	if f == nil || len(call.Args) != 1 {
		return false
	}
	iv, ok := f.Conv[call]
	if !ok {
		return false
	}
	srcTV, ok := info.Types[call.Args[0]]
	if !ok || srcTV.Type == nil {
		return false
	}
	dstTV, ok := info.Types[call]
	if !ok || dstTV.Type == nil {
		return false
	}
	return Fits(iv, srcTV.Type, dstTV.Type)
}
