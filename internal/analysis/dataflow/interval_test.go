package dataflow

import (
	"go/ast"
	"go/types"
	"math"
	"testing"
)

// convsTo returns the conversion calls in fn whose destination type
// prints as dst, in source order.
func convsTo(info *types.Info, fn ast.Node, dst string) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if tv.Type.String() == dst {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

func TestIntervalProvesFloatClamp(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func f(x float64) int8 {
	c := x
	if c > 127 {
		c = 127
	} else if c < -127 {
		c = -127
	}
	return int8(c)
}`)
	fn := funcDecl(t, file, "f")
	facts := Intervals(info, fn)
	convs := convsTo(info, fn, "int8")
	if len(convs) != 1 {
		t.Fatalf("conversions = %d, want 1", len(convs))
	}
	if !facts.ProvesConv(info, convs[0]) {
		t.Fatalf("clamp to [-127,127] not proven; got %+v", facts.Conv[convs[0]])
	}
}

func TestIntervalProvesPanicGuardWithOr(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func g(e int) uint8 {
	if e < 0 || e > 0xff {
		panic("out of range")
	}
	return uint8(e)
}`)
	fn := funcDecl(t, file, "g")
	facts := Intervals(info, fn)
	convs := convsTo(info, fn, "uint8")
	if len(convs) != 1 {
		t.Fatalf("conversions = %d, want 1", len(convs))
	}
	if !facts.ProvesConv(info, convs[0]) {
		t.Fatalf("panic-guarded conversion not proven; got %+v", facts.Conv[convs[0]])
	}
}

func TestIntervalProvesNegatedMagnitude(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func m(v int32) uint32 {
	if v < 0 {
		return uint32(-int64(v))
	}
	return uint32(v)
}`)
	fn := funcDecl(t, file, "m")
	facts := Intervals(info, fn)
	convs := convsTo(info, fn, "uint32")
	if len(convs) != 2 {
		t.Fatalf("conversions = %d, want 2", len(convs))
	}
	for i, c := range convs {
		if !facts.ProvesConv(info, c) {
			t.Errorf("uint32 conversion %d not proven; got %+v", i, facts.Conv[c])
		}
	}
}

func TestIntervalClampAgainstVariableBounds(t *testing.T) {
	// The Gemv8Rows pattern: float bounds derived from int32 params,
	// the clamp target proven through the bound variables' intervals.
	_, file, info := typecheckSrc(t, `package p
func q(f float64, lo, hi int32) int32 {
	flo, fhi := float64(lo), float64(hi)
	if f > fhi {
		f = fhi
	} else if f < flo {
		f = flo
	}
	return int32(f)
}`)
	fn := funcDecl(t, file, "q")
	facts := Intervals(info, fn)
	convs := convsTo(info, fn, "int32")
	if len(convs) != 1 {
		t.Fatalf("conversions = %d, want 1", len(convs))
	}
	if !facts.ProvesConv(info, convs[0]) {
		t.Fatalf("param-derived clamp not proven; got %+v", facts.Conv[convs[0]])
	}
}

func TestIntervalRejectsUnprovenNarrowing(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func r(x int) int8 {
	return int8(x)
}
func s() int8 {
	x := 300
	return int8(x)
}`)
	for _, name := range []string{"r", "s"} {
		fn := funcDecl(t, file, name)
		facts := Intervals(info, fn)
		convs := convsTo(info, fn, "int8")
		if len(convs) != 1 {
			t.Fatalf("%s: conversions = %d, want 1", name, len(convs))
		}
		if facts.ProvesConv(info, convs[0]) {
			t.Errorf("%s: unsafe narrowing wrongly proven", name)
		}
	}
}

func TestIntervalDefinitelyOutside(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func s() int8 {
	x := 300
	return int8(x)
}`)
	fn := funcDecl(t, file, "s")
	facts := Intervals(info, fn)
	convs := convsTo(info, fn, "int8")
	iv, ok := facts.Conv[convs[0]]
	if !ok {
		t.Fatal("no fact recorded")
	}
	if iv.Lo != 300 || iv.Hi != 300 {
		t.Fatalf("interval = %+v, want [300,300]", iv)
	}
	// Wholly outside int8: the definite-overflow predicate intrange uses.
	if iv.Hi >= math.MinInt8 && iv.Lo <= math.MaxInt8 {
		t.Fatal("interval unexpectedly overlaps int8")
	}
}

func TestIntervalWideningTerminates(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func w(n int) int {
	s := 0
	for i := 0; ; i++ {
		s += i
		if s > n {
			break
		}
	}
	return s
}`)
	// The assertion is termination itself (widening caps the chain).
	Intervals(info, funcDecl(t, file, "w"))
}

func TestIntervalCompoundAndMask(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func h(x int) uint8 {
	return uint8(x & 0x7f)
}
func k(x int32) int8 {
	y := x % 100
	return int8(y)
}`)
	for _, tc := range []struct{ fn, dst string }{{"h", "uint8"}, {"k", "int8"}} {
		fn := funcDecl(t, file, tc.fn)
		facts := Intervals(info, fn)
		convs := convsTo(info, fn, tc.dst)
		if len(convs) != 1 {
			t.Fatalf("%s: conversions = %d, want 1", tc.fn, len(convs))
		}
		if !facts.ProvesConv(info, convs[0]) {
			t.Errorf("%s: masked/mod value not proven; got %+v", tc.fn, facts.Conv[convs[0]])
		}
	}
}

func TestIntervalAddressTakenUntracked(t *testing.T) {
	_, file, info := typecheckSrc(t, `package p
func mut(p *int) { *p = 1000 }
func a() int8 {
	x := 5
	mut(&x)
	return int8(x)
}`)
	fn := funcDecl(t, file, "a")
	facts := Intervals(info, fn)
	convs := convsTo(info, fn, "int8")
	if facts.ProvesConv(info, convs[0]) {
		t.Fatal("address-taken variable wrongly proven")
	}
}
