package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"
)

func TestWriteJSON(t *testing.T) {
	findings := []Finding{
		{
			Analyzer: "intrange",
			Category: "stale-suppression",
			Pos:      token.Position{Filename: "a.go", Line: 3, Column: 7},
			Message:  "suppression is stale",
		},
		{
			Analyzer: "quantnarrow",
			Pos:      token.Position{Filename: "b.go", Line: 10, Column: 2},
			Message:  "narrowing conversion",
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d findings, want 2", len(decoded))
	}
	first := decoded[0]
	if first["analyzer"] != "intrange" || first["category"] != "stale-suppression" ||
		first["file"] != "a.go" || first["line"] != float64(3) || first["column"] != float64(7) {
		t.Errorf("first finding mangled: %v", first)
	}
	if _, hasCat := decoded[1]["category"]; hasCat {
		t.Errorf("empty category should be omitted: %v", decoded[1])
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var decoded []any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("empty findings must encode as []: %v (%s)", err, buf.String())
	}
	if decoded == nil {
		t.Fatalf("empty findings encoded as null, want []: %s", buf.String())
	}
}
