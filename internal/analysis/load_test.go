package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadTypeChecksModulePackages exercises the whole loader pipeline
// offline: go list -export resolves and builds export data for the
// dependencies, and the type checker consumes it while checking the
// target from source.
func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := Load("repro/internal/kernels", "repro/internal/term")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	k := byPath["repro/internal/kernels"]
	if k == nil {
		t.Fatal("kernels package not loaded")
	}
	if k.Types == nil || k.Types.Scope().Lookup("Gemm") == nil {
		t.Fatal("kernels not type-checked: Gemm not in scope")
	}
	// Types must be recorded for expressions (analyzers depend on it).
	typed := 0
	for _, f := range k.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if _, ok := k.TypesInfo.Types[e]; ok {
					typed++
				}
			}
			return true
		})
	}
	if typed == 0 {
		t.Fatal("no expression types recorded")
	}
	// On any platform exactly one of fma_amd64.go / fma_other.go is
	// build-selected and the other must surface via IgnoredFiles.
	sel := strings.Join(k.GoFiles, " ")
	ign := strings.Join(k.IgnoredFiles, " ")
	if !strings.Contains(sel+ign, "fma_amd64.go") || !strings.Contains(sel+ign, "fma_other.go") {
		t.Fatalf("fma siblings not surfaced: selected %q ignored %q", sel, ign)
	}
}

// TestLoadExplicitTestdataPath checks that fixture packages under
// testdata/src (invisible to ./... wildcards) load when named explicitly
// — the property RunFixture depends on.
func TestLoadExplicitTestdataPath(t *testing.T) {
	pkgs, err := Load("./testdata/src/smoke/a")
	if err != nil {
		t.Fatalf("Load testdata: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types.Scope().Lookup("F") == nil {
		t.Fatal("fixture not type-checked: F not in scope")
	}
}
