package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadTypeChecksModulePackages exercises the whole loader pipeline
// offline: go list -export resolves and builds export data for the
// dependencies, and the type checker consumes it while checking the
// target from source.
func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := Load("repro/internal/kernels", "repro/internal/term")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	k := byPath["repro/internal/kernels"]
	if k == nil {
		t.Fatal("kernels package not loaded")
	}
	if k.Types == nil || k.Types.Scope().Lookup("Gemm") == nil {
		t.Fatal("kernels not type-checked: Gemm not in scope")
	}
	// Types must be recorded for expressions (analyzers depend on it).
	typed := 0
	for _, f := range k.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if _, ok := k.TypesInfo.Types[e]; ok {
					typed++
				}
			}
			return true
		})
	}
	if typed == 0 {
		t.Fatal("no expression types recorded")
	}
	// On any platform exactly one of fma_amd64.go / fma_other.go is
	// build-selected and the other must surface via IgnoredFiles.
	sel := strings.Join(k.GoFiles, " ")
	ign := strings.Join(k.IgnoredFiles, " ")
	if !strings.Contains(sel+ign, "fma_amd64.go") || !strings.Contains(sel+ign, "fma_other.go") {
		t.Fatalf("fma siblings not surfaced: selected %q ignored %q", sel, ign)
	}
}

// kernelSeams are the asm-gated file pairs in internal/kernels: for each
// seam exactly one variant must be build-selected whatever the tag set —
// the invariant the gemm8/VNNI dispatch (and asmparity's IgnoredFiles
// contract) relies on.
var kernelSeams = []struct {
	arch, portable string
}{
	{"fma_amd64.go", "fma_other.go"},
	{"gemm8_amd64.go", "gemm8_other.go"},
	{"vnni_amd64.go", "vnni_other.go"},
	{"neon_arm64.go", "neon_other.go"},
}

func loadKernels(t *testing.T, tags string) *Package {
	t.Helper()
	pkgs, err := LoadWithTags(tags, "repro/internal/kernels")
	if err != nil {
		t.Fatalf("LoadWithTags(%q): %v", tags, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("LoadWithTags(%q) matched %d packages, want 1", tags, len(pkgs))
	}
	return pkgs[0]
}

func baseNameSet(paths []string) map[string]bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			p = p[i+1:]
		}
		set[p] = true
	}
	return set
}

// TestLoadKernelsNoasm pins the loader's build-tag handling: under
// -tags noasm every asm-gated file moves to IgnoredFiles and its
// portable sibling is selected, consistently across all seams.
func TestLoadKernelsNoasm(t *testing.T) {
	pkg := loadKernels(t, "noasm")
	selected := baseNameSet(pkg.GoFiles)
	ignored := baseNameSet(pkg.IgnoredFiles)
	for _, seam := range kernelSeams {
		if !selected[seam.portable] {
			t.Errorf("noasm: portable %s not build-selected", seam.portable)
		}
		if selected[seam.arch] {
			t.Errorf("noasm: asm-gated %s wrongly build-selected", seam.arch)
		}
		if !ignored[seam.arch] {
			t.Errorf("noasm: asm-gated %s missing from IgnoredFiles", seam.arch)
		}
	}
	for name := range selected {
		if strings.HasSuffix(name, "_amd64.go") || strings.HasSuffix(name, "_arm64.go") {
			t.Errorf("noasm: architecture file %s selected", name)
		}
	}
}

// TestLoadKernelsSeamExclusive checks the default tag set the same way:
// exactly one variant of each seam is selected, and the other side is
// visible to asmparity via IgnoredFiles.
func TestLoadKernelsSeamExclusive(t *testing.T) {
	pkg := loadKernels(t, "")
	selected := baseNameSet(pkg.GoFiles)
	ignored := baseNameSet(pkg.IgnoredFiles)
	for _, seam := range kernelSeams {
		archSel, portSel := selected[seam.arch], selected[seam.portable]
		if archSel == portSel {
			t.Errorf("seam %s/%s: selected arch=%v portable=%v, want exactly one",
				seam.arch, seam.portable, archSel, portSel)
		}
		other := seam.arch
		if archSel {
			other = seam.portable
		}
		if !ignored[other] {
			t.Errorf("seam %s/%s: unselected variant %s missing from IgnoredFiles",
				seam.arch, seam.portable, other)
		}
	}
}

// TestLoadExplicitTestdataPath checks that fixture packages under
// testdata/src (invisible to ./... wildcards) load when named explicitly
// — the property RunFixture depends on.
func TestLoadExplicitTestdataPath(t *testing.T) {
	pkgs, err := Load("./testdata/src/smoke/a")
	if err != nil {
		t.Fatalf("Load testdata: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	if pkgs[0].Types.Scope().Lookup("F") == nil {
		t.Fatal("fixture not type-checked: F not in scope")
	}
}
