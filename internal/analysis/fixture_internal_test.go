package analysis

import (
	"fmt"
	"go/token"
	"strings"
	"testing"
)

func fixtureFinding(file string, line int, msg string) Finding {
	return Finding{
		Analyzer: "test",
		Pos:      token.Position{Filename: file, Line: line, Column: 2},
		Message:  msg,
	}
}

// TestMatchFixtureMultipleDiagnosticsPerLine is the regression test for
// the harness's old greedy claiming: with overlapping patterns, a
// finding could claim the broader want first and strand its sibling.
// The bipartite matcher must accept any satisfiable assignment.
func TestMatchFixtureMultipleDiagnosticsPerLine(t *testing.T) {
	files := map[string][]string{
		"f.go": {
			`package fx`,
			`var x = bad() // want "conv" "conversion overflow"`,
		},
	}
	findings := []Finding{
		// Order chosen so greedy first-fit fails: the first finding
		// matches both patterns and greedy gives it "conv", leaving the
		// second finding (which only matches "conv") unclaimed.
		fixtureFinding("f.go", 2, "conversion overflow of int8"),
		fixtureFinding("f.go", 2, "conv goes wrong"),
	}
	if problems := matchFixture(files, findings); len(problems) != 0 {
		t.Fatalf("want clean match, got problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestMatchFixtureUnmatchedWantHasColumn(t *testing.T) {
	line := `var y = 1 // want "never produced"`
	files := map[string][]string{"g.go": {`package fx`, line}}
	problems := matchFixture(files, nil)
	if len(problems) != 1 {
		t.Fatalf("problems = %d, want 1: %v", len(problems), problems)
	}
	col := strings.Index(line, "never produced") + 1
	wantPrefix := fmt.Sprintf("g.go:2:%d: no diagnostic matching", col)
	if !strings.HasPrefix(problems[0], wantPrefix) {
		t.Fatalf("problem %q does not carry the pattern position %q", problems[0], wantPrefix)
	}
}

func TestMatchFixtureUnexpectedAndMalformed(t *testing.T) {
	files := map[string][]string{
		"h.go": {
			`package fx`,
			`var z = 1 // want no-quotes-here`,
		},
	}
	findings := []Finding{fixtureFinding("h.go", 4, "stray diagnostic")}
	problems := matchFixture(files, findings)
	if len(problems) != 2 {
		t.Fatalf("problems = %d, want 2: %v", len(problems), problems)
	}
	var sawMalformed, sawUnexpected bool
	for _, p := range problems {
		if strings.Contains(p, "malformed want comment") {
			sawMalformed = true
		}
		if strings.Contains(p, "unexpected diagnostic") {
			sawUnexpected = true
		}
	}
	if !sawMalformed || !sawUnexpected {
		t.Fatalf("missing problem kinds in %v", problems)
	}
}

func TestMatchFixtureDistinctWantsBothRequired(t *testing.T) {
	files := map[string][]string{
		"i.go": {
			`package fx`,
			`var w = 1 // want "alpha" "beta"`,
		},
	}
	// Only one of the two wants is satisfied; the beta want must be
	// reported missing, not silently absorbed.
	findings := []Finding{fixtureFinding("i.go", 2, "alpha happened")}
	problems := matchFixture(files, findings)
	if len(problems) != 1 || !strings.Contains(problems[0], `"beta"`) {
		t.Fatalf("problems = %v, want exactly the missing beta want", problems)
	}
}
