package analysis

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRE matches the fixture expectation comment: // want "regexp" — the
// same convention as x/tools' analysistest. Each fixture line carrying a
// want comment must produce exactly the diagnostics whose messages match
// the quoted regular expressions, and every diagnostic must be claimed by
// a want.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// quotedRE extracts the double-quoted patterns from a want comment.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture loads the fixture package at dir (a go list pattern,
// typically ./testdata/src/<analyzer>/<case>), runs the analyzer over it,
// and matches the findings against the fixture's want comments. It is the
// offline stand-in for analysistest.Run.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	findings, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, path := range pkg.GoFiles {
			for ln, text := range fixtureLines(t, path) {
				m := wantRE.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				qs := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", path, ln+1, text)
				}
				for _, q := range qs {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", path, ln+1, q[1], err)
					}
					key := lineKey{path, ln + 1}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	var missing []string
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q",
					key.file, key.line, w.re.String()))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// fixtureLines reads a fixture file and returns its lines (0-indexed).
func fixtureLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", path, err)
	}
	return strings.Split(string(data), "\n")
}
