package analysis

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRE matches the fixture expectation comment: // want "regexp" — the
// same convention as x/tools' analysistest. Each fixture line carrying a
// want comment must produce exactly the diagnostics whose messages match
// the quoted regular expressions, and every diagnostic must be claimed by
// a want.
var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

// quotedRE extracts the double-quoted patterns from a want comment.
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunFixture loads the fixture package at dir (a go list pattern,
// typically ./testdata/src/<analyzer>/<case>), runs the analyzer over it,
// and matches the findings against the fixture's want comments. It is the
// offline stand-in for analysistest.Run.
//
// Matching is per line and maximum-bipartite: a line may carry several
// want patterns and receive several diagnostics, and the harness pairs
// them up in whatever order makes everything match — overlapping
// patterns cannot spuriously fail on claim order. Every unexpected
// diagnostic and every unmatched want (reported at the file:line:column
// of the pattern itself) is an error.
func RunFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", dir)
	}
	findings, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	files := make(map[string][]string)
	for _, pkg := range pkgs {
		for _, path := range pkg.GoFiles {
			files[path] = fixtureLines(t, path)
		}
	}
	for _, problem := range matchFixture(files, findings) {
		t.Error(problem)
	}
}

// fixtureWant is one compiled want pattern, pinned to the position of
// the pattern text inside its comment.
type fixtureWant struct {
	re  *regexp.Regexp
	pos string // file:line:column of the quoted pattern
}

// matchFixture pairs findings against the want comments in files
// (path → lines) and returns every mismatch as a problem string, sorted.
// It is the pure core of RunFixture, separated so the harness itself is
// testable with synthetic findings.
func matchFixture(files map[string][]string, findings []Finding) []string {
	var problems []string
	wants := make(map[lineKey][]*fixtureWant)
	for path, lines := range files {
		for ln, text := range lines {
			loc := wantRE.FindStringSubmatchIndex(text)
			if loc == nil {
				continue
			}
			wantText := text[loc[2]:loc[3]]
			qs := quotedRE.FindAllStringSubmatchIndex(wantText, -1)
			if len(qs) == 0 {
				problems = append(problems, fmt.Sprintf(
					"%s:%d:%d: malformed want comment %q",
					path, ln+1, loc[0]+1, text[loc[0]:]))
				continue
			}
			for _, q := range qs {
				pat := wantText[q[2]:q[3]]
				re, err := regexp.Compile(pat)
				if err != nil {
					problems = append(problems, fmt.Sprintf(
						"%s:%d:%d: bad want pattern %q: %v",
						path, ln+1, loc[2]+q[2]+1, pat, err))
					continue
				}
				key := lineKey{path, ln + 1}
				wants[key] = append(wants[key], &fixtureWant{
					re:  re,
					pos: fmt.Sprintf("%s:%d:%d", path, ln+1, loc[2]+q[2]+1),
				})
			}
		}
	}

	byLine := make(map[lineKey][]Finding)
	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		byLine[key] = append(byLine[key], f)
	}
	keys := make(map[lineKey]bool)
	for k := range wants {
		keys[k] = true
	}
	for k := range byLine {
		keys[k] = true
	}
	for key := range keys {
		fs, ws := byLine[key], wants[key]
		wantOf := matchLine(fs, ws)
		claimed := make([]bool, len(ws))
		for i, f := range fs {
			if wantOf[i] < 0 {
				problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", f))
				continue
			}
			claimed[wantOf[i]] = true
		}
		for j, w := range ws {
			if !claimed[j] {
				problems = append(problems, fmt.Sprintf(
					"%s: no diagnostic matching %q", w.pos, w.re.String()))
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// matchLine computes a maximum bipartite matching between one line's
// findings and its want patterns (edge: pattern matches message),
// via augmenting paths. It returns, per finding, the index of the want
// that claimed it, or -1.
func matchLine(fs []Finding, ws []*fixtureWant) []int {
	matchW := make([]int, len(ws)) // want j ← finding matchW[j]
	for j := range matchW {
		matchW[j] = -1
	}
	var try func(i int, seen []bool) bool
	try = func(i int, seen []bool) bool {
		for j, w := range ws {
			if seen[j] || !w.re.MatchString(fs[i].Message) {
				continue
			}
			seen[j] = true
			if matchW[j] == -1 || try(matchW[j], seen) {
				matchW[j] = i
				return true
			}
		}
		return false
	}
	for i := range fs {
		try(i, make([]bool, len(ws)))
	}
	wantOf := make([]int, len(fs))
	for i := range wantOf {
		wantOf[i] = -1
	}
	for j, i := range matchW {
		if i >= 0 {
			wantOf[i] = j
		}
	}
	return wantOf
}

// fixtureLines reads a fixture file and returns its lines (0-indexed).
func fixtureLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture %s: %v", path, err)
	}
	return strings.Split(string(data), "\n")
}
