// Package lockguard checks //trlint:guarded-by annotations: a struct
// field or package-level variable annotated
//
//	//trlint:guarded-by(mu)
//
// may only be touched while the named mutex is held — a read lock
// (RLock) suffices for reads, writes require the exclusive lock. Helper
// functions that are only called under the lock declare it with
//
//	//trlint:holds(mu)
//
// on the declaration, which seeds the analysis with the lock already
// held at entry.
//
// Lock state is tracked per CFG block with the dataflow solver: the
// fact is the set of held locks (by expression path, e.g. "s.mu"),
// Lock/RLock generate, Unlock/RUnlock kill, and joins intersect —
// a lock only counts as held at a merge point if it is held on every
// path into it. Deferred unlocks are deliberately ignored: a deferred
// mu.Unlock() means held-to-exit, which is exactly what the guarded
// accesses after it rely on.
//
// Known limits, chosen over false positives: lock paths are syntactic
// (s.mu and t.mu are different locks even when s == t — no aliasing),
// and function-literal bodies are not checked (a closure may run on
// another goroutine where the caller's lock set means nothing).
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the lockguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated //trlint:guarded-by(mu) must only be accessed with mu held; writes need the exclusive lock",
	Run:  run,
}

var (
	guardedRE = regexp.MustCompile(`^//\s*trlint:guarded-by\(([^)]+)\)`)
	holdsRE   = regexp.MustCompile(`^//\s*trlint:holds\(([^)]+)\)`)
)

// Held levels. Absent from the set means not held.
const (
	heldRead  = 1
	heldWrite = 2
)

type lockSet map[string]int

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil // annotation-driven: nothing declared, nothing to check
	}
	c := &checker{pass: pass, guarded: guarded}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// collectGuarded maps every annotated object — struct field or
// package-level var — to the name of its guarding lock.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	guarded := make(map[types.Object]string)
	note := func(names []*ast.Ident, groups ...*ast.CommentGroup) {
		lock := directive(guardedRE, groups...)
		if lock == "" {
			return
		}
		for _, name := range names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				guarded[obj] = lock
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					note(field.Names, field.Doc, field.Comment)
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						note(vs.Names, vs.Doc, vs.Comment, n.Doc)
					}
				}
			}
			return true
		})
	}
	return guarded
}

// directive returns the first capture of re in any comment line of the
// given groups, or "".
func directive(re *regexp.Regexp, groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := re.FindStringSubmatch(strings.TrimSpace(c.Text)); m != nil {
				return strings.TrimSpace(m[1])
			}
		}
	}
	return ""
}

type checker struct {
	pass    *analysis.Pass
	guarded map[types.Object]string
}

// checkFunc solves the lock-state dataflow over fd and replays it to
// judge every guarded access.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if c.pass.Flow == nil {
		return
	}
	g := c.pass.Flow.CFG(fd)
	if g == nil {
		return
	}
	l := &lockLattice{info: c.pass.TypesInfo, entry: entrySet(fd)}
	facts := dataflow.Forward[lockSet](g, l)
	for _, b := range g.Blocks {
		f, reached := facts[b]
		if !reached {
			continue
		}
		for _, n := range b.Nodes {
			c.checkNode(n, f)
			f = l.Transfer(n, f)
		}
	}
}

// entrySet seeds the lock set from //trlint:holds(name) on the
// declaration: the named lock is held exclusively at entry, both as the
// bare name (package-level mutex) and as receiver.name (the usual
// method form, e.g. loadLocked holding s.mu).
func entrySet(fd *ast.FuncDecl) lockSet {
	name := directive(holdsRE, fd.Doc)
	if name == "" {
		return lockSet{}
	}
	entry := lockSet{name: heldWrite}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		entry[fd.Recv.List[0].Names[0].Name+"."+name] = heldWrite
	}
	return entry
}

// lockLattice tracks held locks through the CFG.
type lockLattice struct {
	info  *types.Info
	entry lockSet
}

func (l *lockLattice) Entry() lockSet {
	f := make(lockSet, len(l.entry))
	for k, v := range l.entry {
		f[k] = v
	}
	return f
}

// Join intersects: a lock is held after a merge only if held on every
// incoming path, and only at the weaker of the two levels.
func (l *lockLattice) Join(a, b lockSet) lockSet {
	out := make(lockSet)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				va = vb
			}
			out[k] = va
		}
	}
	return out
}

func (l *lockLattice) Equal(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Widen is Join: the lattice is finite (locks syntactically present in
// the function), so chains already stabilize.
func (l *lockLattice) Widen(prev, next lockSet) lockSet { return l.Join(prev, next) }

func (l *lockLattice) Refine(cond ast.Expr, branch bool, f lockSet) lockSet { return f }

// Transfer applies every lock operation inside the node. Deferred
// statements are skipped: their unlocks run at function exit, so the
// lock stays held for the rest of the body (held-to-exit). Function
// literals are skipped too — their bodies execute elsewhere.
func (l *lockLattice) Transfer(n ast.Node, f lockSet) lockSet {
	if rh, ok := n.(dataflow.RangeHeader); ok {
		if rh.X == nil {
			return f
		}
		n = rh.X
	}
	out := f
	mutated := false
	set := func(path string, level int, kill bool) {
		if !mutated {
			cp := make(lockSet, len(out))
			for k, v := range out {
				cp[k] = v
			}
			out = cp
			mutated = true
		}
		if kill {
			delete(out, path)
		} else if out[path] < level {
			out[path] = level
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !isMutex(l.info.Types[sel.X].Type) {
				return true
			}
			path := types.ExprString(sel.X)
			switch sel.Sel.Name {
			case "Lock":
				set(path, heldWrite, false)
			case "RLock":
				set(path, heldRead, false)
			case "Unlock", "RUnlock":
				set(path, 0, true)
			}
		}
		return true
	})
	return out
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkNode reports every guarded access in n that the lock set f does
// not license.
func (c *checker) checkNode(n ast.Node, f lockSet) {
	if rh, ok := n.(dataflow.RangeHeader); ok {
		if rh.X == nil {
			return
		}
		n = rh.X
	}
	writes := writeRoots(c.pass.TypesInfo, n)
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			if lock, ok := c.guarded[c.pass.TypesInfo.Uses[n.Sel]]; ok {
				c.judge(n, types.ExprString(n.X)+"."+lock, writes[n], f)
			}
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[n]
			if lock, ok := c.guarded[obj]; ok && isPkgLevel(obj) {
				c.judge(n, lock, writes[n], f)
			}
		}
		return true
	})
}

func isPkgLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func (c *checker) judge(at ast.Expr, lockPath string, isWrite bool, f lockSet) {
	held := f[lockPath]
	name := types.ExprString(at)
	switch {
	case isWrite && held < heldWrite:
		c.pass.Reportc("guarded-by", at.Pos(),
			"write to %s requires %s held exclusively (//trlint:guarded-by)", name, lockPath)
	case !isWrite && held < heldRead:
		c.pass.Reportc("guarded-by", at.Pos(),
			"read of %s requires %s held (//trlint:guarded-by)", name, lockPath)
	}
}

// writeRoots collects the expressions n mutates: assignment targets,
// inc/dec operands, address-taken operands, and close/delete arguments
// — each stripped of index/star/slice wrappers down to the variable or
// selector actually being written through.
func writeRoots(info *types.Info, n ast.Node) map[ast.Expr]bool {
	writes := make(map[ast.Expr]bool)
	mark := func(e ast.Expr) {
		for {
			switch v := e.(type) {
			case *ast.ParenExpr:
				e = v.X
			case *ast.IndexExpr:
				e = v.X
			case *ast.SliceExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			default:
				writes[e] = true
				return
			}
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			if tv := info.Types[n.Fun]; tv.IsBuiltin() {
				if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "close" || id.Name == "delete") && len(n.Args) > 0 {
					mark(n.Args[0])
				}
			}
		}
		return true
	})
	return writes
}
