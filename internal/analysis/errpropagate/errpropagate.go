// Package errpropagate forbids silently discarded errors in internal/
// and cmd/. The batch inference paths stop on the first error through a
// shared flag; that protocol only works if every error actually
// propagates — an error dropped inside a worker goroutine (or behind a
// bare `_ =`) leaves the batch running on garbage. The same rule applied
// uniformly keeps file I/O honest: a Save that ignores Close reports
// success for data the kernel never flushed.
//
// Print-style calls whose error contract is conventionally ignored
// (fmt.Print*/Fprint*) and the never-failing in-memory writers
// (strings.Builder, bytes.Buffer) are exempt. Anything else needs
// handling or a //trlint:checked justification.
package errpropagate

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errpropagate pass.
var Analyzer = &analysis.Analyzer{
	Name: "errpropagate",
	Doc:  "forbid discarded error returns (including via _ =) in internal/ and cmd/",
	Run:  run,
}

// scope: all production code of this module (tests are not loaded), plus
// this analyzer's fixtures. Other analyzers' fixtures stay out.
var scope = regexp.MustCompile(`^repro(/internal/|/cmd/)|testdata/src/errpropagate/`)

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if strings.Contains(path, "testdata/src/") && !strings.Contains(path, "testdata/src/errpropagate/") {
		return nil
	}
	if !scope.MatchString(path) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, v)
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				checkDropped(pass, call, "")
			}
		case *ast.DeferStmt:
			checkDropped(pass, v.Call, "defer ")
		case *ast.GoStmt:
			checkDropped(pass, v.Call, "go ")
		}
		return true
	})
	return nil
}

// checkAssign flags blank identifiers absorbing an error-typed value.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	rhsTypes := make([]types.Type, len(as.Lhs))
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Multi-value call: component types come from the tuple.
		if tuple, ok := pass.TypesInfo.Types[as.Rhs[0]].Type.(*types.Tuple); ok {
			for i := 0; i < tuple.Len() && i < len(rhsTypes); i++ {
				rhsTypes[i] = tuple.At(i).Type()
			}
		}
	} else if len(as.Rhs) == len(as.Lhs) {
		for i, r := range as.Rhs {
			rhsTypes[i] = pass.TypesInfo.Types[r].Type
		}
	}
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" || rhsTypes[i] == nil || !isError(rhsTypes[i]) {
			continue
		}
		pass.Reportc("discarded-error", id.Pos(), "error result discarded via _; propagate it (batch workers must reach the first-error stop) or annotate //trlint:checked")
	}
}

// checkDropped flags statement-position calls whose error results vanish.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, prefix string) {
	t := pass.TypesInfo.Types[call].Type
	if t == nil || !returnsError(t) || exemptCallee(pass, call) {
		return
	}
	pass.Reportc("dropped-error", call.Pos(), "%scall drops its error result; handle it or annotate //trlint:checked", prefix)
}

func returnsError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isError(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isError(t)
}

func isError(t types.Type) bool {
	return t != nil && t.String() == "error" && types.IsInterface(t)
}

// exemptCallee recognizes the conventional always-ignored error sources.
func exemptCallee(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	full := fn.FullName()
	if strings.HasPrefix(full, "fmt.Print") || strings.HasPrefix(full, "fmt.Fprint") {
		return true
	}
	if strings.HasPrefix(full, "(*strings.Builder).") || strings.HasPrefix(full, "(*bytes.Buffer).") {
		return true
	}
	return false
}
