// Package floatcmp bans == and != on floating-point operands in the
// quantization and requantization code. The paper's bit-exactness claims
// (GemvF64 vs the integer path, TR truncation vs the reference encoder)
// are proven over integer-valued float64 codes; a bare float equality in
// that code either works by accident or hides a tolerance that should be
// explicit. Comparisons must go through an epsilon, math.Float64bits for
// deliberate bit-pattern equality, or carry a //trlint:checked note.
//
// Two idioms are exempt by design: comparison against an exact integral
// zero constant (a division-by-zero or emptiness guard — epsilon would
// change semantics) and the x != x NaN probe.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the floatcmp pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on float operands in quantization code; use epsilon or math.Float64bits",
	Run:  run,
}

// scope covers every package that carries quantized values or their
// scales (plus this analyzer's fixtures).
var scope = regexp.MustCompile(`internal/(kernels|intinfer|core|term|quant|qsim|stats|tensor)$|testdata/src/floatcmp/`)

func run(pass *analysis.Pass) error {
	if !scope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt := pass.TypesInfo.Types[be.X]
		yt := pass.TypesInfo.Types[be.Y]
		if !isFloat(xt.Type) && !isFloat(yt.Type) {
			return true
		}
		if integralZero(xt) || integralZero(yt) {
			return true
		}
		if nanProbe(be) {
			return true
		}
		pass.Reportc("float-compare", be.OpPos, "%s on floating-point operands is bit-inexact; compare with an epsilon or math.Float64bits, or annotate //trlint:checked",
			be.Op)
		return true
	})
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// integralZero reports whether the operand is a constant exactly equal
// to zero.
func integralZero(tv types.TypeAndValue) bool {
	return tv.Value != nil && constant.Sign(tv.Value) == 0
}

// nanProbe recognizes x != x / x == x, the portable NaN test.
func nanProbe(be *ast.BinaryExpr) bool {
	x, ok1 := be.X.(*ast.Ident)
	y, ok2 := be.Y.(*ast.Ident)
	return ok1 && ok2 && x.Name == y.Name
}
