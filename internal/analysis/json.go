package analysis

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable shape of one finding, stable for
// CI consumers (the dataflow-lint job uploads an array of these as its
// artifact). Field names are part of the interface; add, don't rename.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Category string `json:"category,omitempty"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// WriteJSON writes findings to w as an indented JSON array (an empty
// slice encodes as [], never null, so consumers can index
// unconditionally).
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			Category: f.Category,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
