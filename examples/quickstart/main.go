// Quickstart: quantize a small weight/data vector pair, HESE-encode it,
// apply Term Revealing, and compute the dot product with term-pair
// multiplications — the paper's entire pipeline in ~60 lines.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/quant"
	"repro/internal/term"
)

func main() {
	weights := []float32{0.52, -0.13, 0.07, 0.91, -0.44, 0.02, 0.30, -0.60}
	data := []float32{0.10, 0.85, 0.33, 0.02, 0.48, 0.77, 0.05, 0.21}

	// Step 1: conventional 8-bit uniform quantization (QT).
	wp := quant.SearchParams(weights, 8)
	xp := quant.MaxAbsParams(data, 8)
	wCodes := wp.QuantizeSlice(weights)
	xCodes := xp.QuantizeSlice(data)
	fmt.Println("weight codes:", wCodes)
	fmt.Println("data codes:  ", xCodes)

	// Step 2: HESE encoding — minimum-length signed digit representations.
	for _, c := range wCodes[:3] {
		fmt.Printf("HESE(%4d) = %v (%d terms vs %d binary)\n",
			c, term.EncodeHESE(c), term.CountTerms(c, term.HESE),
			term.CountTerms(c, term.Binary))
	}

	// Step 3: Term Revealing — keep the top k terms per group of g.
	cfg := core.Config{GroupSize: 4, GroupBudget: 8, DataTerms: 3,
		WeightEncoding: term.HESE, DataEncoding: term.HESE}
	wExp, wRevealed := core.RevealValues(wCodes, cfg.WeightEncoding,
		cfg.GroupSize, cfg.GroupBudget)
	xExp, _ := core.TruncateData(xCodes, cfg.DataEncoding, cfg.DataTerms)
	fmt.Println("revealed weight codes:", wRevealed)

	// Step 4: the dot product via term-pair multiplications, exactly as
	// the tMAC hardware computes it.
	dot, pairs := core.DotTermPairs(wExp, xExp)
	var exact int64
	for i := range wCodes {
		exact += int64(wCodes[i]) * int64(xCodes[i])
	}
	result := float64(dot) * float64(wp.Scale) * float64(xp.Scale)
	var floatDot float64
	for i := range weights {
		floatDot += float64(weights[i]) * float64(data[i])
	}
	fmt.Printf("term pairs used: %d (QT worst case: %d)\n",
		pairs, core.BaselineTermPairsPerGroup(8, len(weights)))
	fmt.Printf("TR bound per group: %d pairs (k·s)\n", cfg.MaxTermPairsPerGroup())
	fmt.Printf("dot product: TR %.5f, exact-quantized %.5f, float %.5f\n",
		result, float64(exact)*float64(wp.Scale)*float64(xp.Scale), floatDot)
}
