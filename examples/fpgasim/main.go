// FPGA system walkthrough: configures the Table I control registers,
// pushes one quantized layer through the systolic simulator in QT mode,
// reconfigures to TR at run time (the paper's headline reconfigurability
// claim), re-runs, and reports the cycle, latency and energy differences
// plus the bit-serial pipeline in action.
package main

import (
	"fmt"
	"math/rand"

	hwconfig "repro/internal/hw/config"
	"repro/internal/hw/cost"
	"repro/internal/hw/stream"
	"repro/internal/hw/systolic"
	"repro/internal/hw/tmac"
	"repro/internal/term"
)

func main() {
	// A quantized layer: 32 output neurons, dot length 128, 16 samples.
	rng := rand.New(rand.NewSource(9))
	w := make([][]int32, 32)
	for i := range w {
		w[i] = make([]int32, 128)
		for j := range w[i] {
			w[i][j] = int32(rng.Intn(255) - 127)
		}
	}
	x := make([][]int32, 128)
	for i := range x {
		x[i] = make([]int32, 16)
		for j := range x[i] {
			x[i][j] = int32(rng.Intn(128))
		}
	}

	sys := hwconfig.NewSystem()
	fmt.Printf("== boot in QT mode: %+v\n", sys.Regs)

	// QT mode on the reconfigurable TR system runs the same term-pair
	// cells with group size 1 and a budget equal to the bit width
	// (Table I), so every multiply is provisioned at up to 7x7 pairs.
	qtCfg := systolic.Config{Rows: 8, Cols: 8, Mode: systolic.TMAC,
		GroupSize: 1, GroupBudget: 8, DataTerms: 0,
		WeightEnc: term.Binary, DataEnc: term.Binary}
	qtRes, err := systolic.MatMul(qtCfg, w, x)
	must(err)
	fmt.Printf("QT pass: %d cycles (%d tiles)\n", qtRes.Cycles, qtRes.Tiles)

	// For reference: a dedicated bit-parallel pMAC array is faster per
	// cell but costs 6.5x the LUTs per cell (Table II), so at equal area
	// it fields ~6x fewer cells.
	pRes, err := systolic.MatMul(systolic.Config{Rows: 8, Cols: 8, Mode: systolic.PMAC}, w, x)
	must(err)
	fmt.Printf("(same-size pMAC array, 6.5x the area: %d cycles)\n\n", pRes.Cycles)

	// Run-time switch to TR: a handful of register writes.
	must(sys.Configure(hwconfig.TRMode(8, 8, 12, 3)))
	ns := float64(sys.ReconfCycles) / 170e6 * 1e9
	fmt.Printf("== reconfigured to TR in %d cycles = %.0f ns (paper: <100 ns)\n", sys.ReconfCycles, ns)

	trCfg := systolic.Config{Rows: 8, Cols: 8, Mode: systolic.TMAC,
		GroupSize: 8, GroupBudget: 12, DataTerms: 3,
		WeightEnc: term.HESE, DataEnc: term.HESE}
	trRes, err := systolic.MatMul(trCfg, w, x)
	must(err)
	fmt.Printf("TR pass: %d cycles — %.1fx fewer than QT\n",
		trRes.Cycles, float64(qtRes.Cycles)/float64(trRes.Cycles))
	fmt.Printf("wave stats: mean %.1f pairs, max %d, k·s bound %d\n\n",
		float64(trRes.SumWavePairs)/float64(trRes.ComputeWaves),
		trRes.MaxWavePairs, trRes.BoundPairsPerWave)

	// Follow one output through the bit-serial back end.
	sample := trRes.Y[0][0] % 4000
	if sample < 0 {
		sample = -sample
	}
	var cv tmac.CoeffVector
	for _, t := range term.EncodeHESE(int32(sample)) {
		must(cv.Update(int(t.Exp), t.Neg))
	}
	bits := stream.ConvertCoeffVector(&cv)
	relued := stream.ReLUWord(bits)
	fmt.Printf("bit-serial back end: converter -> ReLU gives %d\n", stream.FromBits(relued))
	exps, err := stream.RevealStreams([]int64{stream.FromBits(relued), 77, 300, 5}, 4, 6)
	must(err)
	fmt.Printf("HESE + term comparator (g=4, k=6) outputs:")
	for _, e := range exps {
		fmt.Printf(" %d", e.Value())
	}
	fmt.Println()

	// Project the full network onto the calibrated VC707 model.
	fmt.Println("\n== full-system projection (calibrated VC707 model)")
	row := cost.VC707.OurRow(69.48)
	fmt.Printf("ResNet-18, g=8, k=16: %.2f ms/frame, %.2f frames/J "+
		"(paper: 7.21 ms, 25.22 frames/J)\n", row.LatencyMs, row.FramesPerJoule)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
