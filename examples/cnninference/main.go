// CNN inference under Term Revealing: trains a small ResNet-style network
// on the synthetic image task, then compares float, 8-bit QT, 4-bit QT
// and TR inference — accuracy against term-pair multiplications, the
// paper's Fig. 15 trade-off on one model.
package main

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/models"
	"repro/internal/qsim"
)

func main() {
	g := models.DefaultCNNGeom
	all := datasets.ImageClasses(600, g.Classes, g.InC, g.InH, g.InW, 7)
	train, test := all.Split(420)

	fmt.Println("training a ResNet-style CNN on the synthetic image task...")
	m := models.NewResNetStyle(g, 1)
	cfg := models.DefaultTrain
	cfg.Epochs = 4
	cfg.Verbose = true
	models.Train(m, train, cfg)
	baseline := models.Evaluate(m, test, 32)
	fmt.Printf("float accuracy: %.4f\n\n", baseline)

	specs := []qsim.Spec{
		qsim.QT(8, 8),
		qsim.QT(6, 8),
		qsim.QT(4, 8),
		qsim.TR(8, 16, 3),
		qsim.TR(8, 12, 3),
		qsim.TR(8, 8, 3),
	}
	fmt.Printf("%-28s %10s %16s %16s\n", "setting", "accuracy", "bound pairs/img", "actual pairs/img")
	for _, spec := range specs {
		e := qsim.Attach(m, spec)
		acc := models.Evaluate(m, test, 32)
		n := float64(test.Len())
		fmt.Printf("%-28s %10.4f %16.0f %16.0f\n",
			spec, acc, float64(e.BoundPairs())/n, float64(e.TermPairs())/n)
		e.Detach()
	}
	fmt.Println("\nTR holds accuracy near 8-bit QT at a fraction of the provisioned")
	fmt.Println("term pairs, while aggressive QT (4-bit) loses accuracy outright.")
}
