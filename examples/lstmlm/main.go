// LSTM language modelling under Term Revealing: trains a word-level LSTM
// on the synthetic Markov corpus (the offline stand-in for Wikitext-2)
// and compares perplexity under float, QT and TR inference.
package main

import (
	"fmt"

	"repro/internal/datasets"
	"repro/internal/models"
	"repro/internal/qsim"
)

func main() {
	corpus := datasets.MarkovText(10000, 2000, 100, 3)
	fmt.Printf("corpus: %d train / %d valid tokens, vocab %d\n",
		len(corpus.Train), len(corpus.Valid), corpus.Vocab)

	m := models.NewLSTMLM(corpus.Vocab, 24, 48, 16, 0.2, 5)
	cfg := models.DefaultLMTrain
	cfg.Epochs = 2
	cfg.Verbose = true
	m.TrainLM(corpus, cfg)

	base := m.Perplexity(corpus.Valid)
	fmt.Printf("\nfloat perplexity: %.2f (uniform bound: %d)\n\n", base, corpus.Vocab)

	specs := []qsim.Spec{
		qsim.QT(8, 8),
		qsim.QT(6, 8),
		qsim.QT(4, 8),
		qsim.TR(8, 20, 3),
		qsim.TR(8, 16, 3),
		qsim.TR(8, 12, 3),
	}
	fmt.Printf("%-28s %12s %18s\n", "setting", "perplexity", "bound pairs/token")
	for _, spec := range specs {
		e := qsim.AttachLM(m, spec)
		ppl := m.Perplexity(corpus.Valid)
		fmt.Printf("%-28s %12.2f %18.0f\n", spec, ppl,
			float64(e.BoundPairs())/float64(len(corpus.Valid)))
		e.Detach()
	}
	fmt.Println("\nThe paper's LSTM result: TR reaches the 8-bit QT perplexity with")
	fmt.Println("about 3x fewer term-pair multiplications; aggressive QT does not.")
}
