// Integer-only deployment: trains VGG-style and ResNet-style CNNs, folds
// their batch norms, compiles them to integer inference plans (8-bit
// codes, 32-bit accumulators, static scales, scale-aligned residual
// skip-adds — the form the paper's hardware executes), applies Term
// Revealing to the deployed weights, and runs parallel batch inference
// with no floating point on the data path.
package main

import (
	"fmt"
	"os"

	"repro/internal/datasets"
	"repro/internal/intinfer"
	"repro/internal/models"
	"repro/internal/qsim"
)

func main() {
	g := models.DefaultCNNGeom
	all := datasets.ImageClassesHard(800, g.Classes, g.InC, g.InH, g.InW, 0.25, 0.5, 17)
	train, test := all.Split(560)

	for _, arch := range []struct {
		name  string
		build func(models.CNNGeom, int64) *models.ImageModel
	}{
		{"VGG-style", models.NewVGGStyle},
		{"ResNet-style (residual skip-adds)", models.NewResNetStyle},
	} {
		fmt.Printf("training a %s CNN...\n", arch.name)
		m := arch.build(g, 18)
		cfg := models.DefaultTrain
		cfg.Epochs = 5
		models.Train(m, train, cfg)
		floatAcc := models.Evaluate(m, test, 32)
		fmt.Printf("float accuracy: %.4f\n", floatAcc)

		folded := qsim.FoldBatchNorm(m)
		fmt.Printf("folded %d batch norms into their convolutions\n", folded)

		for _, opt := range []struct {
			label string
			opts  intinfer.Options
		}{
			{"int8 (QT)", intinfer.Options{Calibration: train.Images[:64]}},
			{"int8 + TR(g=8,k=12)", intinfer.Options{Calibration: train.Images[:64],
				GroupSize: 8, GroupBudget: 12}},
			{"int8 + TR(g=8,k=8)", intinfer.Options{Calibration: train.Images[:64],
				GroupSize: 8, GroupBudget: 8}},
		} {
			plan, err := intinfer.Build(m, opt.opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "intdeploy:", err)
				os.Exit(1)
			}
			preds, err := plan.InferBatchParallel(test.Images, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, "intdeploy:", err)
				os.Exit(1)
			}
			correct := 0
			for i, p := range preds {
				if p == test.Labels[i] {
					correct++
				}
			}
			fmt.Printf("  %-22s accuracy %.4f (integer-only data path)\n",
				opt.label, float64(correct)/float64(len(preds)))
		}
		fmt.Println()
	}
	fmt.Println("\nTR quantizes the deployed integer weights further at load time;")
	fmt.Println("no retraining, no floating point between input and logits.")
}
