# Verification tiers for the term-revealing reproduction.
#
#   make tier1   build + full test suite (the repo's gate; ROADMAP.md)
#   make tier2   vet + race-enabled tests: exercises InferBatchParallel
#                and the intra-layer GEMM/GEMV row fan-out under the
#                race detector (see TestParallelPathsUnderContention)
#   make bench   integer-inference benchmarks + results/BENCH_intinfer.json

GO ?= go

.PHONY: tier1 tier2 bench

tier1:
	$(GO) build ./... && $(GO) test ./...

tier2:
	$(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkIntegerInference' -benchmem .
	$(GO) run ./cmd/trbench -bench
