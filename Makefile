# Verification tiers for the term-revealing reproduction.
#
#   make tier1   build + full test suite (the repo's gate; ROADMAP.md)
#   make tier2   vet + race-enabled tests: exercises InferBatchParallel
#                and the intra-layer GEMM/GEMV row fan-out under the
#                race detector (see TestParallelPathsUnderContention)
#   make tier3   vet + trlint (the custom static-invariant suite,
#                DESIGN.md §8) + race-enabled tests
#   make lint    trlint alone: quantnarrow, poolarena, asmparity,
#                floatcmp, errpropagate, intrange, ctxguard, lockguard
#                over every module package (DESIGN.md §8 and §13)
#   make lint-json  same gate, findings as a JSON array on stdout (CI
#                artifacts and editor tooling)
#   make bench   integer-inference benchmarks + results/BENCH_intinfer.json
#   make benchcmp  re-measure and diff ns_per_image against the committed
#                baseline; fails on a >10% regression on any benchmark
#   make tier1-noasm  tier1 with the assembly kernels compiled out
#                (-tags noasm), proving the portable fallbacks alone pass
#   make autotune-check  tile-autotuner determinism gate: two cold plan
#                builds against one warm cache must land identical tile
#                picks, identical predictions, and zero microbenchmark
#                time on the warm build
#   make serve-smoke  end-to-end serving check: boot trserve on an
#                ephemeral port, classify one image over HTTP, scrape
#                /metrics for the trq_serve_* families, then issue one
#                degraded-budget request (the lowest ladder rung) and
#                assert the response echoes the served budget, hot-swap
#                the model through POST /v1/reload (version bump on the
#                boot artifact, classify again on the swapped model),
#                drain
#   make serve-bench  selfload run + results/BENCH_serve.json; with the
#                default budget ladder this runs the strict/degrade A/B
#                per worker-pool size in the scaling sweep and records
#                the shed-rate contrast plus the scaling curve
#   make serve-soak  multi-core soak: sweep the worker pool under
#                closed-loop load with the per-phase p99 SLO asserted
#                against the server-side latency histogram; writes a
#                scratch report (results/BENCH_soak.json, gitignored)
#                so the committed scaling baseline is never clobbered
#   make budget-bench  per-budget accuracy/latency curve of the demo
#                plan family + results/BENCH_budget.json
#   make load-bench  model cold-start benchmark: gob snapshot vs .trq
#                compressed artifact (on-disk bytes, load time, plan
#                build) + results/BENCH_load.json; fails unless the
#                artifact is at least 2x smaller than gob

GO ?= go

.PHONY: tier1 tier1-noasm tier2 tier3 lint lint-json bench benchcmp autotune-check serve-smoke serve-bench serve-soak budget-bench load-bench

tier1:
	$(GO) build ./... && $(GO) test ./...

tier1-noasm:
	$(GO) build -tags noasm ./... && $(GO) test -tags noasm ./...

# The race tiers skip internal/experiments: that package regenerates
# the paper's evaluation serially end to end (model training + sweeps),
# which race instrumentation stretches past 45 minutes while adding no
# interleaving coverage. Every concurrent surface — the intinfer batch
# and intra-image fan-outs, the kernels chunk goroutines — has its own
# race-enabled suite in its own package. The explicit timeout keeps the
# slower race packages (models, intinfer, qsim) clear of go test's
# default 10-minute per-package alarm.
RACE_TIMEOUT ?= 20m
RACE_PKGS = $$($(GO) list ./... | grep -v /internal/experiments)

tier2:
	$(GO) vet ./... && $(GO) test -race -timeout $(RACE_TIMEOUT) $(RACE_PKGS)

tier3:
	$(GO) vet ./...
	$(GO) run ./cmd/trlint ./...
	$(GO) test -race -timeout $(RACE_TIMEOUT) $(RACE_PKGS)

lint:
	$(GO) run ./cmd/trlint ./...

lint-json:
	$(GO) run ./cmd/trlint -json ./...

bench:
	$(GO) test -run '^$$' -bench 'BenchmarkIntegerInference' -benchmem .
	$(GO) run ./cmd/trbench -bench

# benchcmp measures into a scratch file (results/BENCH_head.json is
# gitignored) so the committed baseline is never clobbered by the gate.
benchcmp:
	$(GO) run ./cmd/trbench -bench -force -bench-out results/BENCH_head.json -compare results/BENCH_intinfer.json

# The determinism test runs hermetically (TRQ_AUTOTUNE_CACHE in a test
# temp dir), so -count=1 is enough to exercise cold-measure + warm-load.
autotune-check:
	$(GO) test -count=1 -run 'TestAutotuneWarmCacheDeterminism' ./internal/intinfer
	$(GO) test -count=1 ./internal/kernels/autotune

serve-smoke:
	$(GO) run ./cmd/trserve -model mlp -smoke

serve-bench:
	$(GO) run ./cmd/trserve -model mlp -selfload -duration 3s

# The soak holds every phase (strict and degrade, at every pool size up
# through 4 workers) to a p99 bound read from the server-side latency
# histogram; a few thousand requests land per phase at the default
# client count. The scratch output keeps the committed baseline intact.
serve-soak:
	$(GO) run ./cmd/trserve -model mlp -selfload -sweep 1,2,4 -duration 2s \
		-slo-p99 250ms -force -out results/BENCH_soak.json

budget-bench:
	$(GO) run ./cmd/trbench -bench-budget

load-bench:
	$(GO) run ./cmd/trbench -bench-load
