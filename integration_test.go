package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/hw/stream"
	"repro/internal/hw/systolic"
	"repro/internal/hw/tmac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/qsim"
	"repro/internal/quant"
	"repro/internal/term"
)

// TestEndToEndMLPOnSystolicArray runs a trained MLP's inference entirely
// in the integer domain through the tMAC systolic-array simulator —
// quantize, TR the weights, HESE-truncate the data, matmul on the array,
// integer ReLU, second layer, argmax — and checks the predictions agree
// with the qsim software emulation on the vast majority of samples.
func TestEndToEndMLPOnSystolicArray(t *testing.T) {
	train := datasets.DigitsNoisy(600, 0.2, 41)
	test := datasets.DigitsNoisy(64, 0.2, 42)
	m := models.NewMLP(64, 43)
	cfg := models.DefaultTrain
	cfg.Epochs = 3
	models.Train(m, train, cfg)

	const g, k, s = 8, 12, 3
	// Software path: qsim predictions under the same TR setting.
	e := qsim.Attach(m, qsim.TR(g, k, s))
	logits := m.Forward(test.Images, false)
	swPred := make([]int, test.Len())
	for i := 0; i < test.Len(); i++ {
		best, bestV := 0, logits.Data[i*10]
		for c := 1; c < 10; c++ {
			if v := logits.Data[i*10+c]; v > bestV {
				best, bestV = c, v
			}
		}
		swPred[i] = best
	}
	e.Detach()

	// Hardware path: integer-domain inference on the systolic simulator.
	var fc1, fc2 *nn.Linear
	nn.Walk(m.Net, func(l nn.Layer) {
		if lin, ok := l.(*nn.Linear); ok {
			if lin.Name() == "fc1" {
				fc1 = lin
			} else {
				fc2 = lin
			}
		}
	})
	if fc1 == nil || fc2 == nil {
		t.Fatal("MLP layers not found")
	}
	arrCfg := systolic.Config{Rows: 16, Cols: 8, Mode: systolic.TMAC,
		GroupSize: g, GroupBudget: k, DataTerms: s,
		WeightEnc: term.HESE, DataEnc: term.HESE}

	quantizeWeights := func(l *nn.Linear) ([][]int32, quant.Params, []float32) {
		p := quant.MaxAbsParams(l.Weight.W.Data, 8)
		w := make([][]int32, l.Out)
		for o := 0; o < l.Out; o++ {
			w[o] = p.QuantizeSlice(l.Weight.W.Data[o*l.In : (o+1)*l.In])
		}
		return w, p, l.Bias.W.Data
	}
	w1, p1, b1 := quantizeWeights(fc1)
	w2, p2, b2 := quantizeWeights(fc2)

	hwPred := make([]int, test.Len())
	for i, img := range test.Images {
		// Layer 1: dynamic data quantization, array matmul, dequantize,
		// bias, ReLU — exactly the hardware dataflow.
		xp := quant.MaxAbsParams(img, 8)
		x := make([][]int32, len(img))
		for j, v := range img {
			x[j] = []int32{xp.Quantize(v)}
		}
		res1, err := systolic.MatMul(arrCfg, w1, x)
		if err != nil {
			t.Fatal(err)
		}
		hidden := make([]float32, fc1.Out)
		for o := range hidden {
			v := float32(res1.Y[o][0])*p1.Scale*xp.Scale + b1[o]
			if v < 0 {
				v = 0
			}
			hidden[o] = v
		}
		// Layer 2.
		hp := quant.MaxAbsParams(hidden, 8)
		h := make([][]int32, len(hidden))
		for j, v := range hidden {
			h[j] = []int32{hp.Quantize(v)}
		}
		res2, err := systolic.MatMul(arrCfg, w2, h)
		if err != nil {
			t.Fatal(err)
		}
		best, bestV := 0, float32(res2.Y[0][0])*p2.Scale*hp.Scale+b2[0]
		for c := 1; c < 10; c++ {
			v := float32(res2.Y[c][0])*p2.Scale*hp.Scale + b2[c]
			if v > bestV {
				best, bestV = c, v
			}
		}
		hwPred[i] = best
	}

	agree := 0
	for i := range swPred {
		if swPred[i] == hwPred[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(swPred)); frac < 0.9 {
		t.Errorf("hardware and software predictions agree on only %.0f%% of samples", 100*frac)
	}
	// And the hardware path itself classifies well above chance.
	correct := 0
	for i, p := range hwPred {
		if p == test.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(hwPred)); acc < 0.6 {
		t.Errorf("systolic-array inference accuracy %.2f too low", acc)
	}
}

// TestFrontToBackTermPipeline drives a single dot product through every
// hardware stage — TR'd weights in a tMAC, coefficient vector, binary
// stream converter, ReLU, HESE encoder, term comparator — and confirms
// each stage agrees with its functional model.
func TestFrontToBackTermPipeline(t *testing.T) {
	w := []int32{37, -85, 102, 14, -7, 63, -120, 5}
	x := []int32{9, 17, 33, 2, 81, 44, 6, 127}
	wExp, _ := core.RevealValues(w, term.HESE, 8, 12)
	xExp, _ := core.TruncateData(x, term.HESE, 3)

	cell := tmac.NewTMAC(wExp)
	work, err := cell.ProcessGroup(xExp)
	if err != nil {
		t.Fatal(err)
	}
	if work.Cycles > 12*3 {
		t.Errorf("cycles %d exceed the k·s bound 36", work.Cycles)
	}
	var want int64
	for i := range w {
		want += int64(wExp[i].Value()) * int64(xExp[i].Value())
	}
	if cell.Result() != want {
		t.Fatalf("tMAC result %d, want %d", cell.Result(), want)
	}

	bits := stream.ConvertCoeffVector(&cell.CV)
	if stream.FromBits(bits) != want {
		t.Fatal("binary stream converter disagrees")
	}
	relued := stream.ReLUWord(bits)
	wantReLU := want
	if wantReLU < 0 {
		wantReLU = 0
	}
	if stream.FromBits(relued) != wantReLU {
		t.Fatal("bit-serial ReLU disagrees")
	}
	if wantReLU > 0 {
		enc, err := stream.EncodeHESEHW(wantReLU)
		if err != nil {
			t.Fatal(err)
		}
		sw := term.EncodeHESE(int32(wantReLU))
		if len(enc) != len(sw) {
			t.Fatalf("hardware HESE %v vs software %v", enc, sw)
		}
	}
}
